package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveSystem(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveSystem(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error, got nil")
	}
}

func TestFactorDoesNotModifyInput(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	before := a.Clone()
	if _, err := Factor(a); err != nil {
		t.Fatalf("factor: %v", err)
	}
	for i := range a.Data {
		if a.Data[i] != before.Data[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 10},
	})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("factor: %v", err)
	}
	if !almostEq(f.Det(), -3, 1e-12) {
		t.Errorf("det = %v, want -3", f.Det())
	}
}

func TestIdentitySolve(t *testing.T) {
	n := 7
	id := Identity(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i) - 2.5
	}
	x, err := SolveSystem(id, b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{
		{4, 7},
		{2, 6},
	})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("inverse: %v", err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-12) {
				t.Errorf("(a·a⁻¹)[%d][%d] = %v, want %v", i, j, prod.At(i, j), want)
			}
		}
	}
}

// Property: for random well-conditioned A and x, Solve(A, A·x) recovers x.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance keeps it well conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: det(PA) = ±det(A) sign accounting — det of a permuted identity is ±1.
func TestDetPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		perm := r.Perm(n)
		m := NewMatrix(n, n)
		for i, p := range perm {
			m.Set(i, p, 1)
		}
		fac, err := Factor(m)
		if err != nil {
			return false
		}
		return math.Abs(math.Abs(fac.Det())-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSolveKnown(t *testing.T) {
	// (1+j)x + 2y = 3+j ; x - jy = 1  → pick x=1, y=1+... verify via multiply.
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, 2)
	a.Set(1, 0, 1)
	a.Set(1, 1, complex(0, -1))
	xTrue := []complex128{complex(0.5, -0.25), complex(1, 2)}
	b := make([]complex128, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			b[i] += a.At(i, j) * xTrue[j]
		}
	}
	got, err := CSolve(a.Clone(), b)
	if err != nil {
		t.Fatalf("csolve: %v", err)
	}
	for i := range xTrue {
		if d := got[i] - xTrue[i]; math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], xTrue[i])
		}
	}
}

func TestCSolveSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := CSolve(a, []complex128{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestMatrixOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Errorf("mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	tr := a.Transpose()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Errorf("transpose wrong: %v", tr)
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v, want 4", a.MaxAbs())
	}
	s := a.Clone().Scale(2)
	if s.At(1, 1) != 8 {
		t.Errorf("scale wrong: %v", s.At(1, 1))
	}
	sum := a.Clone().AddMatrix(b)
	if sum.At(0, 0) != 6 {
		t.Errorf("add wrong: %v", sum.At(0, 0))
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if Dot(a, b) != 1*4-2*5+3*6 {
		t.Errorf("dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Errorf("norm2 = %v", Norm2([]float64{3, 4}))
	}
	if NormInf(b) != 6 {
		t.Errorf("norminf = %v", NormInf(b))
	}
	y := CloneVec(a)
	AXPY(2, b, y)
	if y[0] != 9 || y[1] != -8 || y[2] != 15 {
		t.Errorf("axpy = %v", y)
	}
	d := Sub(a, b)
	if d[0] != -3 || d[1] != 7 || d[2] != -3 {
		t.Errorf("sub = %v", d)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 0},
		{2, 5, 3},
		{0, 3, 6},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must recover a.
	lt := l.Transpose()
	prod := l.Mul(lt)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(prod.At(i, j), a.At(i, j), 1e-12) {
				t.Errorf("(L·Lᵀ)[%d][%d] = %v, want %v", i, j, prod.At(i, j), a.At(i, j))
			}
		}
	}
	// Strict upper triangle is zero.
	if l.At(0, 1) != 0 || l.At(0, 2) != 0 || l.At(1, 2) != 0 {
		t.Error("L is not lower triangular")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 1}, // eigenvalues 3 and -1
	})
	if _, err := Cholesky(a); err == nil {
		t.Error("indefinite matrix accepted")
	}
	if _, err := Cholesky(FromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Error("non-square accepted")
	}
}

// Property: Cholesky of I + v·vᵀ (always SPD) round-trips.
func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		a := Identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Add(i, j, v[i]*v[j])
			}
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		prod := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(prod.At(i, j), a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLowerMulVec(t *testing.T) {
	l := FromRows([][]float64{
		{2, 0, 0},
		{1, 3, 0},
		{4, 5, 6},
	})
	x := []float64{1, 2, 3}
	got := LowerMulVec(l, x)
	want := l.MulVec(x)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("LowerMulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// SolveInPlace must produce bit-identical solutions to Factor + Solve: the
// spice Newton loop relies on that to keep scratch reuse observationally
// invisible.
func TestSolveInPlaceMatchesSolveSystem(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(int64(rng%2000)-1000) / 250
	}
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%7
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = next()
			for j := 0; j < n; j++ {
				a.Set(i, j, next())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominate: nonsingular
		}
		want, err := SolveSystem(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]float64(nil), b...)
		if err := SolveInPlace(a.Clone(), got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d x[%d]: in-place %.17g vs system %.17g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveInPlaceSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if err := SolveInPlace(a, []float64{1, 1}); err == nil {
		t.Fatal("singular system not reported")
	}
}

// CSolveInPlace must produce bit-identical solutions to CSolve on the same
// values: the AC sweep relies on the in-place variant being observationally
// invisible, exactly as the real SolveInPlace contract above.
func TestCSolveInPlaceMatchesCSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%7
		a := NewCMatrix(n, n)
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
			a.Add(i, i, complex(float64(n), 0))
		}
		want, err := CSolve(a.Clone(), b)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), b...)
		if err := CSolveInPlace(a.Clone(), got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d x[%d]: in-place %v vs csolve %v", trial, i, got[i], want[i])
			}
		}
	}
}

// Shape error paths: mismatched right-hand sides and non-square inputs
// must be rejected by every entry point, not crash.
func TestSolveShapeErrors(t *testing.T) {
	sq := Identity(3)
	if err := SolveInPlace(sq.Clone(), []float64{1, 2}); err == nil {
		t.Error("short rhs accepted by SolveInPlace")
	}
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted by Factor")
	}
	if err := CSolveInPlace(NewCMatrix(2, 3), make([]complex128, 2)); err == nil {
		t.Error("non-square accepted by CSolveInPlace")
	}
	if err := CSolveInPlace(NewCMatrix(2, 2), make([]complex128, 3)); err == nil {
		t.Error("long rhs accepted by CSolveInPlace")
	}
}
