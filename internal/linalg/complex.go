package linalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the AC analysis of the
// MNA engine where conductance and susceptance stamps combine as G + jωC.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zero complex matrix with the given shape.
func NewCMatrix(rows, cols int) *CMatrix {
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets all elements, keeping the allocation.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// cabs1 is the pivot-selection magnitude |re| + |im| — LAPACK's cabs1, a
// factor-√2 approximation of the modulus that avoids a hypot (square root)
// per candidate element on the AC sweep's hot path.
func cabs1(v complex128) float64 {
	return math.Abs(real(v)) + math.Abs(imag(v))
}

// CSolve solves the complex system a x = b by LU with partial pivoting.
// The input matrix is modified in place (callers pass scratch copies).
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	x := append([]complex128(nil), b...)
	if err := CSolveInPlace(a, x); err != nil {
		return nil, err
	}
	return x, nil
}

// CSolveInPlace solves a x = b destructively: a is overwritten with its LU
// factors and b with the solution — the allocation-free core of CSolve,
// used by the AC sweep where one solve runs per frequency point.
func CSolveInPlace(a *CMatrix, x []complex128) error {
	if a.Rows != a.Cols {
		return errors.New("linalg: CSolve of non-square matrix")
	}
	n := a.Rows
	if len(x) != n {
		return errors.New("linalg: rhs length mismatch")
	}
	d := a.Data
	for k := 0; k < n; k++ {
		p, max := k, cabs1(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cabs1(d[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return ErrSingular
		}
		rowK := d[k*n : (k+1)*n]
		if p != k {
			rowP := d[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			x[p], x[k] = x[k], x[p]
		}
		// One reciprocal per pivot column; the multipliers then cost a
		// complex multiply instead of Go's (much slower) robust division.
		// A subnormal pivot overflows the reciprocal — fall back to robust
		// per-element division for that column instead of spreading Inf.
		pivot := rowK[k]
		inv := 1 / pivot
		useInv := !cmplx.IsInf(inv)
		xk := x[k]
		for i := k + 1; i < n; i++ {
			rowI := d[i*n : (i+1)*n]
			var m complex128
			if useInv {
				m = rowI[k] * inv
			} else {
				m = rowI[k] / pivot
			}
			if m == 0 {
				continue
			}
			rowI[k] = 0
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
			x[i] -= m * xk
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := d[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		piv := row[i]
		if piv == 0 {
			return ErrSingular
		}
		x[i] = s / piv
	}
	return nil
}
