package linalg

import (
	"errors"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the AC analysis of the
// MNA engine where conductance and susceptance stamps combine as G + jωC.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zero complex matrix with the given shape.
func NewCMatrix(rows, cols int) *CMatrix {
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets all elements, keeping the allocation.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CSolve solves the complex system a x = b by LU with partial pivoting.
// The input matrix is modified in place (callers pass scratch copies).
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: CSolve of non-square matrix")
	}
	n := a.Rows
	if len(b) != n {
		return nil, errors.New("linalg: rhs length mismatch")
	}
	x := make([]complex128, n)
	copy(x, b)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		p, max := k, cmplx.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rowP := a.Data[p*n : (p+1)*n]
			rowK := a.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			x[p], x[k] = x[k], x[p]
		}
		pivot := a.At(k, k)
		for i := k + 1; i < n; i++ {
			m := a.At(i, k) / pivot
			if m == 0 {
				continue
			}
			a.Set(i, k, 0)
			rowI := a.Data[i*n : (i+1)*n]
			rowK := a.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
			x[i] -= m * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := a.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
