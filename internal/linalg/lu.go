package linalg

import (
	"errors"
	"math"
)

// ErrSingular reports a (numerically) singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of a. The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU of non-square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest |a[i][k]| for i >= k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != k {
			rowP := lu.Data[p*n : (p+1)*n]
			rowK := lu.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			rowI := lu.Data[i*n : (i+1)*n]
			rowK := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, errors.New("linalg: rhs length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Backward substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveSystem factors a and solves a x = b in one call.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveInPlace solves a x = b destructively: a is overwritten with its LU
// factors and b with the solution. It performs the identical arithmetic to
// Factor + Solve — row swaps are applied to b as they happen instead of
// through a final permutation — so results are bit-identical, without the
// factorization clone and solution allocation. It is the allocation-free primitive under
// hot Newton loops (internal/spice) that re-stamp a every iteration anyway.
func SolveInPlace(a *Matrix, b []float64) error {
	if a.Rows != a.Cols {
		return errors.New("linalg: LU of non-square matrix")
	}
	n := a.Rows
	if len(b) != n {
		return errors.New("linalg: rhs length mismatch")
	}
	for k := 0; k < n; k++ {
		p, max := k, math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return ErrSingular
		}
		if p != k {
			rowP := a.Data[p*n : (p+1)*n]
			rowK := a.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			b[p], b[k] = b[k], b[p]
		}
		pivot := a.At(k, k)
		for i := k + 1; i < n; i++ {
			m := a.At(i, k) / pivot
			a.Set(i, k, m)
			if m == 0 {
				continue
			}
			rowI := a.Data[i*n : (i+1)*n]
			rowK := a.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s
	}
	// Backward substitution.
	for i := n - 1; i >= 0; i-- {
		row := a.Data[i*n : (i+1)*n]
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		d := row[i]
		if d == 0 {
			return ErrSingular
		}
		b[i] = s / d
	}
	return nil
}

// Inverse returns a⁻¹ (for small systems such as LM normal equations).
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
