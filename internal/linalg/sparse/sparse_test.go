package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// denseSolve is a tiny reference Gaussian elimination with partial pivoting,
// kept local so the package has no dependency on internal/linalg.
func denseSolve(t *testing.T, a [][]float64, b []float64) []float64 {
	t.Helper()
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(m[i][k]) > math.Abs(m[p][k]) {
				p = i
			}
		}
		m[k], m[p] = m[p], m[k]
		if m[k][k] == 0 {
			t.Fatal("reference solve: singular")
		}
		for i := k + 1; i < n; i++ {
			f := m[i][k] / m[k][k]
			for j := k; j <= n; j++ {
				m[i][j] -= f * m[k][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x
}

// buildFrom stamps a dense test matrix into a freshly analyzed sparse one.
func buildFrom(t *testing.T, a [][]float64) *Matrix[float64] {
	t.Helper()
	n := len(a)
	b := NewBuilder(n)
	for i := range a {
		for j, v := range a[i] {
			if v != 0 {
				b.Add(i, j)
			}
		}
	}
	sym, err := b.Analyze()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m := NewMatrix[float64](sym)
	vals := m.Values()
	for i := range a {
		for j, v := range a[i] {
			if v != 0 {
				vals[sym.Index(i, j)] += v
			}
		}
	}
	return m
}

func TestSolveMatchesDense(t *testing.T) {
	a := [][]float64{
		{2, 1, 0, -1},
		{-3, 0, 2, 0},
		{0, 1, 2, 0},
		{1, 0, 0, 3},
	}
	b := []float64{8, -11, -3, 4}
	want := denseSolve(t, a, b)
	m := buildFrom(t, a)
	x := append([]float64{}, b...)
	if err := m.FactorSolve(x); err != nil {
		t.Fatalf("factor+solve: %v", err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

// An MNA-style system with a voltage-source branch row: the diagonal of the
// branch equation is structurally zero, so the solver must survive on the
// maximum transversal alone.
func TestZeroDiagonalBranchRow(t *testing.T) {
	// [g  1] [v]   [0]     (KCL at the node with the branch current)
	// [1  0] [i] = [V]     (branch equation v = V)
	g, V := 1e-3, 1.8
	a := [][]float64{{g, 1}, {1, 0}}
	m := buildFrom(t, a)
	x := []float64{0, V}
	if err := m.FactorSolve(x); err != nil {
		t.Fatalf("factor+solve: %v", err)
	}
	if math.Abs(x[0]-V) > 1e-12 || math.Abs(x[1]+g*V) > 1e-15 {
		t.Errorf("v=%v i=%v, want v=%v i=%v", x[0], x[1], V, -g*V)
	}
}

func TestStructurallySingular(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0)
	b.Add(1, 0) // column 1 is empty: no perfect matching exists
	if _, err := b.Analyze(); !errors.Is(err, ErrStructural) {
		t.Fatalf("err = %v, want ErrStructural", err)
	}
}

func TestNumericallySingular(t *testing.T) {
	m := buildFrom(t, [][]float64{{1, 1}, {1, 1}})
	if err := m.Factorize(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Solve after a failed factorization must refuse rather than return
	// stale garbage.
	if err := m.Solve([]float64{1, 1}); err == nil {
		t.Fatal("solve after failed factorization did not error")
	}
}

// Refactorization reuse: the same Symbolic serves many value assignments,
// and each refactor solves the new system (the Monte-Carlo perturbation
// lifecycle).
func TestRefactorizationReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	// Fixed pattern: strong diagonal plus a band and a few long-range
	// couplings.
	pat := [][2]int{}
	for i := 0; i < n; i++ {
		pat = append(pat, [2]int{i, i})
		if i > 0 {
			pat = append(pat, [2]int{i, i - 1}, [2]int{i - 1, i})
		}
	}
	pat = append(pat, [2]int{0, n - 1}, [2]int{n - 1, 0}, [2]int{2, 7}, [2]int{7, 2})
	b := NewBuilder(n)
	for _, e := range pat {
		b.Add(e[0], e[1])
	}
	sym, err := b.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix[float64](sym)
	for trial := 0; trial < 25; trial++ {
		m.Zero()
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		vals := m.Values()
		for _, e := range pat {
			v := rng.NormFloat64()
			if e[0] == e[1] {
				v += float64(n) // diagonal dominance keeps the no-pivot path stable
			}
			vals[sym.Index(e[0], e[1])] += v
			dense[e[0]][e[1]] += v
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want := denseSolve(t, dense, rhs)
		got := append([]float64{}, rhs...)
		if err := m.FactorSolve(got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestComplexSolve(t *testing.T) {
	a := [][]complex128{
		{complex(1, 1), 2, 0},
		{1, complex(0, -1), complex(0.5, 0)},
		{0, complex(0, 2), complex(3, -1)},
	}
	xTrue := []complex128{complex(0.5, -0.25), complex(1, 2), complex(-1, 0.5)}
	n := len(a)
	b := NewBuilder(n)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != 0 {
				b.Add(i, j)
			}
		}
	}
	sym, err := b.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix[complex128](sym)
	vals := m.Values()
	rhs := make([]complex128, n)
	for i := range a {
		for j, v := range a[i] {
			if v != 0 {
				vals[sym.Index(i, j)] += v
			}
			rhs[i] += a[i][j] * xTrue[j]
		}
	}
	if err := m.FactorSolve(rhs); err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		d := rhs[i] - xTrue[i]
		if math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, rhs[i], xTrue[i])
		}
	}
}

// Ground (negative) indices route to the trash slot and never disturb the
// system.
func TestTrashSlot(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 4}}
	m := buildFrom(t, a)
	sym := m.Symbolic()
	if got := sym.Index(-1, 0); got != sym.Trash() {
		t.Fatalf("Index(-1,0) = %d, want trash %d", got, sym.Trash())
	}
	m.Values()[sym.Index(-1, -1)] += 1e9
	x := []float64{2, 4}
	if err := m.FactorSolve(x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-15 || math.Abs(x[1]-1) > 1e-15 {
		t.Errorf("x = %v, want [1 1]", x)
	}
}

// The min-degree ordering must keep an arrow matrix (dense first row/col,
// diagonal elsewhere) fill-free by eliminating the hub last.
func TestMinDegreeAvoidsArrowFill(t *testing.T) {
	n := 20
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i)
		if i > 0 {
			b.Add(0, i)
			b.Add(i, 0)
		}
	}
	sym, err := b.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if sym.NNZ() != sym.Stamped() {
		t.Errorf("arrow pattern filled in: nnz %d > stamped %d", sym.NNZ(), sym.Stamped())
	}
}

// Random patterns with a random permutation as the guaranteed transversal,
// most rows without a diagonal entry, so the matching is non-trivial; the
// solve is verified through its residual directly. The bound is loose
// relative to the diagonally dominant cases above: without numerical
// pivoting, adversarial random matrices see real elimination growth (MNA
// systems put their conductance mass on the matched diagonal and are
// verified against the dense solver at 1e-9 in the circuit-level tests).
func TestResidualRandomAsymmetric(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		perm := rng.Perm(n)
		type entry struct{ r, c int }
		entries := map[entry]float64{}
		for i, p := range perm {
			entries[entry{i, p}] = 3 + float64(n) + rng.NormFloat64() // strong transversal
		}
		for k := 3 * n; k > 0; k-- {
			entries[entry{rng.Intn(n), rng.Intn(n)}] += rng.NormFloat64()
		}
		b := NewBuilder(n)
		for k := range entries {
			b.Add(k.r, k.c)
		}
		sym, err := b.Analyze()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := NewMatrix[float64](sym)
		vals := m.Values()
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		for k, v := range entries {
			vals[sym.Index(k.r, k.c)] += v
			dense[k.r][k.c] += v
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := append([]float64{}, rhs...)
		if err := m.FactorSolve(x); err != nil {
			t.Fatalf("seed %d n=%d: %v", seed, n, err)
		}
		xinf := 0.0
		for _, v := range x {
			xinf = math.Max(xinf, math.Abs(v))
		}
		for i := 0; i < n; i++ {
			r := -rhs[i]
			for j := 0; j < n; j++ {
				r += dense[i][j] * x[j]
			}
			if math.Abs(r) > 1e-5*(1+xinf) {
				t.Fatalf("seed %d n=%d: residual[%d] = %g (|x|inf %g)", seed, n, i, r, xinf)
			}
		}
	}
}

func TestIndexOutsidePatternPanics(t *testing.T) {
	m := buildFrom(t, [][]float64{{1, 0}, {0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("Index outside pattern did not panic")
		}
	}()
	m.Symbolic().Index(0, 1)
}
