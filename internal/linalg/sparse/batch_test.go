package sparse

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randPattern builds a random n×n pattern with a guaranteed structural
// diagonal plus extra off-diagonal entries, the MNA-like shape the engine
// produces. Entries are added with duplicates on purpose: the builder must
// collapse them.
func randPattern(rng *rand.Rand, n int, extra int) *Builder {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i)
	}
	for e := 0; e < extra; e++ {
		r, c := rng.Intn(n), rng.Intn(n)
		b.Add(r, c)
		if rng.Intn(3) == 0 {
			b.Add(r, c) // duplicate
		}
	}
	return b
}

// fillLanes stamps K independent random value assignments over one pattern:
// lane l of the batch and scalar matrix l receive bit-identical values.
func fillLanes(rng *rand.Rand, sym *Symbolic, k int) (*BatchMatrix[float64], []*Matrix[float64]) {
	bm := NewBatchMatrix[float64](sym, k)
	ms := make([]*Matrix[float64], k)
	bv := bm.Values()
	for l := range ms {
		ms[l] = NewMatrix[float64](sym)
		sv := ms[l].Values()
		for t := 0; t < sym.NNZ(); t++ {
			sv[t] = rng.NormFloat64()
		}
		for i := 0; i < sym.N(); i++ {
			if rng.Intn(8) > 0 {
				sv[sym.diag[i]] += 3 // keep most pivots comfortably away from zero
			}
		}
		for t := 0; t < sym.NNZ(); t++ {
			bv[t*k+l] = sv[t]
		}
	}
	return bm, ms
}

// checkLockstepEquivalence factors and solves the batch and its K scalar
// references and requires bit-identical factors, pivots, solutions and error
// outcomes lane by lane — the lane determinism contract.
func checkLockstepEquivalence(t *testing.T, sym *Symbolic, bm *BatchMatrix[float64], ms []*Matrix[float64], rng *rand.Rand) {
	t.Helper()
	k := bm.Lanes()
	rhs := make([]float64, sym.N()*k)
	scalarRHS := make([][]float64, k)
	for l := 0; l < k; l++ {
		scalarRHS[l] = make([]float64, sym.N())
		for i := 0; i < sym.N(); i++ {
			v := rng.NormFloat64()
			scalarRHS[l][i] = v
			rhs[i*k+l] = v
		}
	}
	berrs := bm.Factorize()
	for l := 0; l < k; l++ {
		serr := ms[l].Factorize()
		if (serr == nil) != (berrs[l] == nil) {
			t.Fatalf("lane %d: factorize error mismatch: scalar %v, batch %v", l, serr, berrs[l])
		}
		if serr != nil {
			if !errors.Is(berrs[l], ErrSingular) {
				t.Fatalf("lane %d: batch error %v does not wrap ErrSingular", l, berrs[l])
			}
			continue
		}
		for t2 := 0; t2 < sym.NNZ(); t2++ {
			if sb, bb := ms[l].vals[t2], bm.vals[t2*k+l]; math.Float64bits(sb) != math.Float64bits(bb) {
				t.Fatalf("lane %d: factor entry %d differs: scalar %v, batch %v", l, t2, sb, bb)
			}
		}
		for i := 0; i < sym.N(); i++ {
			if si, bi := ms[l].inv[i], bm.inv[i*k+l]; math.Float64bits(si) != math.Float64bits(bi) {
				t.Fatalf("lane %d: pivot reciprocal %d differs: scalar %v, batch %v", l, i, si, bi)
			}
		}
	}
	serrs := bm.Solve(rhs)
	for l := 0; l < k; l++ {
		if berrs[l] != nil {
			if serrs[l] == nil {
				t.Fatalf("lane %d: solve succeeded after failed factorization", l)
			}
			continue
		}
		if err := ms[l].Solve(scalarRHS[l]); err != nil {
			t.Fatalf("lane %d: scalar solve: %v", l, err)
		}
		for i := 0; i < sym.N(); i++ {
			if sx, bx := scalarRHS[l][i], rhs[i*k+l]; math.Float64bits(sx) != math.Float64bits(bx) {
				t.Fatalf("lane %d: solution[%d] differs: scalar %v, batch %v", l, i, sx, bx)
			}
		}
	}
}

// Lockstep refactorization must be bit-identical to K independent scalar
// refactorizations across random MNA-like patterns — including lanes that hit
// singular pivot sequences while their neighbors stay healthy.
func TestLockstepMatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(24)
		sym, err := randPattern(rng, n, 3*n).Analyze()
		if err != nil {
			t.Fatalf("analyze n=%d: %v", n, err)
		}
		k := 1 + rng.Intn(8)
		bm, ms := fillLanes(rng, sym, k)
		if trial%4 == 0 && n > 2 {
			// Poison one lane with an exactly zero pivot row to exercise
			// failed-lane isolation.
			lane := rng.Intn(k)
			row := sym.rowPerm[rng.Intn(n)]
			for j := sym.rowPtr[row]; j < sym.rowPtr[row+1]; j++ {
				ms[lane].vals[j] = 0
				bm.vals[j*k+lane] = 0
			}
		}
		checkLockstepEquivalence(t, sym, bm, ms, rand.New(rand.NewSource(int64(trial))))
	}
}

// A fully dense row (and column) forces maximal fill through the min-degree
// order; the lockstep kernel must still track the scalar one bit for bit.
func TestLockstepDenseRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i)
		b.Add(0, i) // dense row
		b.Add(i, 0) // dense column
		b.Add(i, (i+1)%n)
	}
	sym, err := b.Analyze()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	bm, ms := fillLanes(rng, sym, 4)
	checkLockstepEquivalence(t, sym, bm, ms, rng)
}

// A fully dense matrix: every entry stamped, maximal duplicate collapsing.
func TestLockstepFullyDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 10
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(i, j)
			b.Add(i, j) // duplicates must collapse
		}
	}
	sym, err := b.Analyze()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if sym.Stamped() != n*n {
		t.Fatalf("duplicate entries not collapsed: stamped %d, want %d", sym.Stamped(), n*n)
	}
	bm, ms := fillLanes(rng, sym, 8)
	checkLockstepEquivalence(t, sym, bm, ms, rng)
}

// An empty row has no structural pivot: Analyze must refuse with
// ErrStructural rather than hand the numeric phase a hole.
func TestEmptyRowStructural(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 0)
	b.Add(1, 1)
	b.Add(3, 3)
	// Row 2 left empty.
	if _, err := b.Analyze(); !errors.Is(err, ErrStructural) {
		t.Fatalf("empty row: got %v, want ErrStructural", err)
	}
}

// Unused lanes (zero values, e.g. the tail of a partial sample group) must be
// flagged singular without disturbing live lanes.
func TestLockstepZeroLaneIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sym, err := randPattern(rng, 12, 30).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	bm, ms := fillLanes(rng, sym, k)
	for t2 := 0; t2 < sym.NNZ(); t2++ {
		bm.vals[t2*k+2] = 0 // lane 2 left unstamped
	}
	errs := bm.Factorize()
	if !errors.Is(errs[2], ErrSingular) {
		t.Fatalf("zero lane: got %v, want ErrSingular", errs[2])
	}
	for _, l := range []int{0, 1, 3} {
		if errs[l] != nil {
			t.Fatalf("live lane %d poisoned by zero lane: %v", l, errs[l])
		}
		if err := ms[l].Factorize(); err != nil {
			t.Fatal(err)
		}
		for t2 := 0; t2 < sym.NNZ(); t2++ {
			if math.Float64bits(ms[l].vals[t2]) != math.Float64bits(bm.vals[t2*k+l]) {
				t.Fatalf("lane %d factor diverged next to a dead lane", l)
			}
		}
	}
}

// Complex lanes (the AC path) follow the same contract.
func TestLockstepComplexMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sym, err := randPattern(rng, 14, 40).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	bm := NewBatchMatrix[complex128](sym, k)
	ms := make([]*Matrix[complex128], k)
	for l := range ms {
		ms[l] = NewMatrix[complex128](sym)
		for t2 := 0; t2 < sym.NNZ(); t2++ {
			v := complex(rng.NormFloat64()+2, rng.NormFloat64())
			ms[l].vals[t2] = v
			bm.vals[t2*k+l] = v
		}
	}
	rhs := make([]complex128, sym.N()*k)
	srhs := make([][]complex128, k)
	for l := 0; l < k; l++ {
		srhs[l] = make([]complex128, sym.N())
		for i := range srhs[l] {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			srhs[l][i] = v
			rhs[i*k+l] = v
		}
	}
	for l, err := range bm.FactorSolve(rhs) {
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
		if err := ms[l].FactorSolve(srhs[l]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sym.N(); i++ {
			sx, bx := srhs[l][i], rhs[i*k+l]
			if math.Float64bits(real(sx)) != math.Float64bits(real(bx)) ||
				math.Float64bits(imag(sx)) != math.Float64bits(imag(bx)) {
				t.Fatalf("lane %d: complex solution[%d] differs: %v vs %v", l, i, sx, bx)
			}
		}
	}
}

// FuzzBuilderAnalyzeLockstep drives Builder → Analyze with arbitrary entry
// streams (duplicates, empty rows, dense rows, any shape the bytes spell out)
// and, whenever the pattern is structurally sound, checks the lockstep kernel
// against the scalar one lane by lane. The seed corpus covers the pathologies
// the MNA engine is known to produce.
func FuzzBuilderAnalyzeLockstep(f *testing.F) {
	f.Add([]byte{4, 0, 0, 1, 1, 2, 2, 3, 3, 0, 3, 3, 0})      // near-diagonal + corners
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 1, 1, 2, 2})            // duplicate entries
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0})            // cyclic, zero diagonal
	f.Add([]byte{2, 0, 0})                                    // empty row 1
	f.Add([]byte{6, 0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5})      // dense row 0 only
	f.Add([]byte{1, 0, 0})                                    // 1×1
	f.Add([]byte{8, 7, 7, 7, 0, 0, 7, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%12
		b := NewBuilder(n)
		seed := int64(0)
		for _, by := range data {
			seed = seed*131 + int64(by)
		}
		for i := 1; i+1 < len(data); i += 2 {
			b.Add(int(data[i])%n, int(data[i+1])%n)
		}
		sym, err := b.Analyze()
		if err != nil {
			if !errors.Is(err, ErrStructural) {
				t.Fatalf("analyze returned non-structural error: %v", err)
			}
			return
		}
		if sym.NNZ() < sym.Stamped() {
			t.Fatalf("fill pattern smaller than stamped pattern: %d < %d", sym.NNZ(), sym.Stamped())
		}
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		bm, ms := fillLanes(rng, sym, k)
		checkLockstepEquivalence(t, sym, bm, ms, rng)
	})
}

// benchPattern builds an MNA-like banded-plus-coupling pattern of size n.
func benchPattern(b *testing.B, n int) *Symbolic {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bd := NewBuilder(n)
	for i := 0; i < n; i++ {
		bd.Add(i, i)
		for d := 1; d <= 2; d++ {
			bd.Add(i, (i+d)%n)
			bd.Add((i+d)%n, i)
		}
	}
	for e := 0; e < 2*n; e++ {
		bd.Add(rng.Intn(n), rng.Intn(n))
	}
	sym, err := bd.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	return sym
}

// BenchmarkLockstepFactorSolve measures the per-sample cost of the lockstep
// kernel at the pattern sizes of the registered spice scenarios (19 unknowns:
// folded-cascode testbench; 64: the post-layout-scale target) and K=1/4/8
// lanes. Reported time is per factorize+solve of the whole batch; divide by K
// for the per-sample amortized cost the yield loop sees.
func BenchmarkLockstepFactorSolve(b *testing.B) {
	for _, n := range []int{19, 64} {
		sym := benchPattern(b, n)
		for _, k := range []int{1, 4, 8} {
			b.Run(benchName(n, k), func(b *testing.B) {
				rng := rand.New(rand.NewSource(3))
				bm := NewBatchMatrix[float64](sym, k)
				base := make([]float64, len(bm.vals))
				for i := range base {
					base[i] = rng.NormFloat64() + 4
				}
				rhs := make([]float64, n*k)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(bm.vals, base)
					for j := range rhs {
						rhs[j] = 1
					}
					for _, err := range bm.FactorSolve(rhs) {
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

func benchName(n, k int) string {
	return fmt.Sprintf("n=%d/k=%d", n, k)
}

// BenchmarkLockstepFactorSolveComplex is the complex128 twin — the AC
// sweep's per-frequency primitive, where most of a spice sample's solver
// time goes.
func BenchmarkLockstepFactorSolveComplex(b *testing.B) {
	for _, n := range []int{19, 64} {
		sym := benchPattern(b, n)
		for _, k := range []int{1, 4, 8} {
			b.Run(benchName(n, k), func(b *testing.B) {
				rng := rand.New(rand.NewSource(3))
				bm := NewBatchMatrix[complex128](sym, k)
				base := make([]complex128, len(bm.vals))
				for i := range base {
					base[i] = complex(rng.NormFloat64()+4, rng.NormFloat64())
				}
				rhs := make([]complex128, n*k)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(bm.vals, base)
					for j := range rhs {
						rhs[j] = 1
					}
					for _, err := range bm.FactorSolve(rhs) {
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
