package sparse

import (
	"fmt"
)

// BatchMatrix holds K independent value lanes over one shared Symbolic
// pattern in structure-of-arrays layout: the K lane values of pattern entry t
// sit contiguously at vals[t*K : (t+1)*K]. One traversal of the index arrays
// (the part of Factorize that is branches, loads of cols/rowPtr/diag and
// cache misses on the pattern) then drives K numeric eliminations at once —
// the lockstep refactorization that amortizes the per-sample cost of
// Monte-Carlo sweeps sharing one topology.
//
// Lane determinism contract: lane l of a BatchMatrix performs exactly the
// floating-point operations, in exactly the order, of a scalar Matrix
// factorization/solve of the same values. Lanes never mix arithmetically —
// the only cross-lane coupling is control flow, and the kernel is written so
// the per-lane operation sequence is independent of the other lanes' values
// (see the zero-multiplier guard in Factorize). A lane of a lockstep batch
// is therefore bit-identical to a scalar solve of that sample.
type BatchMatrix[T Scalar] struct {
	sym  *Symbolic
	k    int
	vals []T // (NNZ()+1)*k; entry t's lanes at [t*k : (t+1)*k]
	w    []T // dense scatter rows, n*k
	inv  []T // pivot reciprocals, n*k
	pb   []T // permuted right-hand sides, n*k
	errs []error
	ok   bool

	// zpe caches the per-row zero-pivot error values. Inside the lockstep
	// drivers a retired lane (converged, failed, or a partial group's tail)
	// keeps its zeroed values in the batch, so its factorization "fails" at
	// the first pivot on every remaining iteration and frequency point; the
	// cache keeps that bookkeeping allocation- and formatting-free.
	zpe []error
}

// NewBatchMatrix returns a zero K-lane matrix over the analyzed pattern.
func NewBatchMatrix[T Scalar](s *Symbolic, k int) *BatchMatrix[T] {
	if k < 1 {
		panic(fmt.Sprintf("sparse: invalid lane count %d", k))
	}
	return &BatchMatrix[T]{
		sym:  s,
		k:    k,
		vals: make([]T, (s.NNZ()+1)*k),
		w:    make([]T, s.n*k),
		inv:  make([]T, s.n*k),
		pb:   make([]T, s.n*k),
		errs: make([]error, k),
	}
}

// zeroPivotErr returns the cached zero-pivot error of permuted row i.
func (m *BatchMatrix[T]) zeroPivotErr(i int) error {
	if m.zpe == nil {
		m.zpe = make([]error, m.sym.n)
	}
	if m.zpe[i] == nil {
		m.zpe[i] = fmt.Errorf("%w: zero pivot at permuted row %d", ErrSingular, i)
	}
	return m.zpe[i]
}

// Symbolic returns the shared pattern.
func (m *BatchMatrix[T]) Symbolic() *Symbolic { return m.sym }

// Lanes returns K, the number of value lanes.
func (m *BatchMatrix[T]) Lanes() int { return m.k }

// Values exposes the SoA value array for direct stamping: entry t of the
// pattern, lane l, lives at Values()[t*Lanes()+l]. The last Lanes() elements
// are the per-lane write-off slots.
func (m *BatchMatrix[T]) Values() []T { return m.vals }

// Zero clears all lanes' values, keeping the allocations.
func (m *BatchMatrix[T]) Zero() {
	for i := range m.vals {
		m.vals[i] = 0
	}
	m.ok = false
}

// Factorize runs the numeric elimination of all K lanes in lockstep inside
// the precomputed fill pattern and returns the per-lane outcome: errs[l] is
// nil when lane l factored, or wraps ErrSingular when its pivot sequence
// broke down. A failed lane never poisons the others — each lane's
// arithmetic is fully independent — and its factors are simply unusable
// (Solve reports the same per-lane error). The returned slice is reused by
// the next Factorize call.
func (m *BatchMatrix[T]) Factorize() []error {
	if m.k == kernelWidth {
		// The auto-resolved width takes the constant-width kernel (same
		// per-lane operation sequence, compile-time lane bound).
		m.factorize8()
		return m.errs
	}
	s, k := m.sym, m.k
	vals, w, inv, cols := m.vals, m.w, m.inv, s.cols
	for l := 0; l < k; l++ {
		m.errs[l] = nil
	}
	for i := 0; i < s.n; i++ {
		start, end, dp := s.rowPtr[i], s.rowPtr[i+1], s.diag[i]
		for t := start; t < end; t++ {
			copy(w[cols[t]*k:cols[t]*k+k], vals[t*k:t*k+k])
		}
		for t := start; t < dp; t++ {
			c := cols[t]
			wk := w[c*k : c*k+k : c*k+k]
			ik := inv[c*k : c*k+k : c*k+k]
			// Per-lane multiplier; the scalar kernel skips the update row
			// when the multiplier is exactly zero, and so must every lane
			// here (bit-identity: w -= 0*v can still flip the sign of a
			// negative zero). When no lane needs the skip — the common case
			// once the ladder leaves degenerate stampings behind — the
			// unguarded block below keeps the inner loop branch-free.
			allNZ := true
			for l := 0; l < k; l++ {
				wk[l] *= ik[l]
				if wk[l] == 0 {
					allNZ = false
				}
			}
			if allNZ {
				for u := s.diag[c] + 1; u < s.rowPtr[c+1]; u++ {
					cu := cols[u]
					wc := w[cu*k : cu*k+k : cu*k+k]
					vu := vals[u*k : u*k+k : u*k+k]
					for l := 0; l < k; l++ {
						wc[l] -= wk[l] * vu[l]
					}
				}
			} else {
				for u := s.diag[c] + 1; u < s.rowPtr[c+1]; u++ {
					cu := cols[u]
					wc := w[cu*k : cu*k+k : cu*k+k]
					vu := vals[u*k : u*k+k : u*k+k]
					for l := 0; l < k; l++ {
						if wk[l] != 0 {
							wc[l] -= wk[l] * vu[l]
						}
					}
				}
			}
		}
		for t := start; t < end; t++ {
			copy(vals[t*k:t*k+k], w[cols[t]*k:cols[t]*k+k])
		}
		for l := 0; l < k; l++ {
			if m.errs[l] != nil {
				// Lane already broke down at an earlier row; keep its
				// reciprocals zero so its multipliers vanish from the
				// remaining elimination.
				inv[i*k+l] = 0
				continue
			}
			d := vals[dp*k+l]
			if badPivot(d) {
				m.errs[l] = m.zeroPivotErr(i)
				inv[i*k+l] = 0
				continue
			}
			r := T(1) / d
			if infValue(r) {
				m.errs[l] = fmt.Errorf("%w: subnormal pivot at permuted row %d", ErrSingular, i)
				inv[i*k+l] = 0
				continue
			}
			inv[i*k+l] = r
		}
	}
	m.ok = true
	return m.errs
}

// Solve overwrites the K right-hand sides in b (SoA layout: component i of
// lane l at b[i*Lanes()+l], original index order) with the per-lane
// solutions, in lockstep. The returned per-lane errors mirror the last
// Factorize: a lane that failed to factor reports its factorization error
// and its slots in b are unspecified. The slice is shared with Factorize.
func (m *BatchMatrix[T]) Solve(b []T) []error {
	s, k := m.sym, m.k
	n := s.n
	if !m.ok {
		for l := 0; l < k; l++ {
			m.errs[l] = errNotFactored
		}
		return m.errs
	}
	if len(b) < n*k {
		panic(fmt.Sprintf("sparse: batch rhs length %d < %d", len(b), n*k))
	}
	if k == kernelWidth {
		m.solve8(b)
		return m.errs
	}
	vals, cols, pb, inv := m.vals, s.cols, m.pb, m.inv
	for i := 0; i < n; i++ {
		copy(pb[i*k:i*k+k], b[s.rowInv[i]*k:s.rowInv[i]*k+k])
	}
	for i := 1; i < n; i++ {
		pi := pb[i*k : i*k+k : i*k+k]
		for t := s.rowPtr[i]; t < s.diag[i]; t++ {
			c := cols[t]
			vt := vals[t*k : t*k+k : t*k+k]
			pc := pb[c*k : c*k+k : c*k+k]
			for l := 0; l < k; l++ {
				pi[l] -= vt[l] * pc[l]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		pi := pb[i*k : i*k+k : i*k+k]
		for t := s.diag[i] + 1; t < s.rowPtr[i+1]; t++ {
			c := cols[t]
			vt := vals[t*k : t*k+k : t*k+k]
			pc := pb[c*k : c*k+k : c*k+k]
			for l := 0; l < k; l++ {
				pi[l] -= vt[l] * pc[l]
			}
		}
		ri := inv[i*k : i*k+k : i*k+k]
		for l := 0; l < k; l++ {
			pi[l] *= ri[l]
		}
	}
	for c := 0; c < n; c++ {
		copy(b[c*k:c*k+k], pb[s.colPerm[c]*k:s.colPerm[c]*k+k])
	}
	return m.errs
}

// FactorSolve factors all lanes and solves the SoA right-hand sides in b —
// the per-Newton-iteration primitive of the lockstep path.
func (m *BatchMatrix[T]) FactorSolve(b []T) []error {
	m.Factorize()
	return m.Solve(b)
}
