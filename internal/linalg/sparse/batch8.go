package sparse

import "fmt"

// Constant-width specialization of the lockstep kernel at the auto-resolved
// lane count. The generic Factorize/Solve bodies index every lane group with
// the runtime lane count k, which costs the compiler a bounds check per lane
// access and a memmove call per scatter/gather row. With the width fixed at
// compile time the same loops run over *[8]T array views: bounds checks
// vanish, the lane loops unroll, and the row copies become inline block
// moves. The per-lane floating-point sequence is untouched — these are the
// exact generic loops with k constant — so the lane determinism contract
// (lane l performs exactly the scalar kernel's operation sequence) holds bit
// for bit.

const kernelWidth = 8

func (m *BatchMatrix[T]) factorize8() {
	const k = kernelWidth
	s := m.sym
	vals, w, inv, cols := m.vals, m.w, m.inv, s.cols
	for l := 0; l < k; l++ {
		m.errs[l] = nil
	}
	for i := 0; i < s.n; i++ {
		start, end, dp := s.rowPtr[i], s.rowPtr[i+1], s.diag[i]
		for t := start; t < end; t++ {
			*(*[k]T)(w[cols[t]*k:]) = *(*[k]T)(vals[t*k:])
		}
		for t := start; t < dp; t++ {
			c := cols[t]
			wk := (*[k]T)(w[c*k:])
			ik := (*[k]T)(inv[c*k:])
			// Per-lane multiplier with the generic kernel's zero-skip guard
			// (w -= 0*v can flip the sign of a negative zero).
			allNZ := true
			for l := 0; l < k; l++ {
				wk[l] *= ik[l]
				if wk[l] == 0 {
					allNZ = false
				}
			}
			if allNZ {
				for u := s.diag[c] + 1; u < s.rowPtr[c+1]; u++ {
					wc := (*[k]T)(w[cols[u]*k:])
					vu := (*[k]T)(vals[u*k:])
					for l := 0; l < k; l++ {
						wc[l] -= wk[l] * vu[l]
					}
				}
			} else {
				for u := s.diag[c] + 1; u < s.rowPtr[c+1]; u++ {
					wc := (*[k]T)(w[cols[u]*k:])
					vu := (*[k]T)(vals[u*k:])
					for l := 0; l < k; l++ {
						if wk[l] != 0 {
							wc[l] -= wk[l] * vu[l]
						}
					}
				}
			}
		}
		for t := start; t < end; t++ {
			*(*[k]T)(vals[t*k:]) = *(*[k]T)(w[cols[t]*k:])
		}
		for l := 0; l < k; l++ {
			if m.errs[l] != nil {
				inv[i*k+l] = 0
				continue
			}
			d := vals[dp*k+l]
			if badPivot(d) {
				m.errs[l] = m.zeroPivotErr(i)
				inv[i*k+l] = 0
				continue
			}
			r := T(1) / d
			if infValue(r) {
				m.errs[l] = fmt.Errorf("%w: subnormal pivot at permuted row %d", ErrSingular, i)
				inv[i*k+l] = 0
				continue
			}
			inv[i*k+l] = r
		}
	}
	m.ok = true
}

func (m *BatchMatrix[T]) solve8(b []T) {
	const k = kernelWidth
	s := m.sym
	n := s.n
	vals, cols, pb, inv := m.vals, s.cols, m.pb, m.inv
	for i := 0; i < n; i++ {
		*(*[k]T)(pb[i*k:]) = *(*[k]T)(b[s.rowInv[i]*k:])
	}
	for i := 1; i < n; i++ {
		pi := (*[k]T)(pb[i*k:])
		for t := s.rowPtr[i]; t < s.diag[i]; t++ {
			vt := (*[k]T)(vals[t*k:])
			pc := (*[k]T)(pb[cols[t]*k:])
			for l := 0; l < k; l++ {
				pi[l] -= vt[l] * pc[l]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		pi := (*[k]T)(pb[i*k:])
		for t := s.diag[i] + 1; t < s.rowPtr[i+1]; t++ {
			vt := (*[k]T)(vals[t*k:])
			pc := (*[k]T)(pb[cols[t]*k:])
			for l := 0; l < k; l++ {
				pi[l] -= vt[l] * pc[l]
			}
		}
		ri := (*[k]T)(inv[i*k:])
		for l := 0; l < k; l++ {
			pi[l] *= ri[l]
		}
	}
	for c := 0; c < n; c++ {
		*(*[k]T)(b[c*k:]) = *(*[k]T)(pb[s.colPerm[c]*k:])
	}
}
