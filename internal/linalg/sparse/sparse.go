// Package sparse implements a static-pattern sparse LU solver for the MNA
// circuit engine. The cost model of circuit simulation is peculiar: one
// topology is solved thousands of times (every Newton iteration, every AC
// frequency point, every Monte-Carlo sample of one design) while the nonzero
// pattern of the matrix never changes. The package therefore splits the
// solve into
//
//   - a one-time symbolic analysis (Builder → Analyze): a maximum transversal
//     puts a structurally nonzero entry on every diagonal position (MNA
//     branch rows carry a zero diagonal), a minimum-degree/Markowitz
//     heuristic orders the elimination to limit fill-in, and the fill
//     pattern of L+U under that fixed order is precomputed; and
//   - a numeric refactorization (Matrix.Factorize) that runs row-wise
//     Doolittle elimination inside the precomputed pattern with no pivot
//     search and no allocation, followed by Solve.
//
// Devices stamp through direct indices into the value array (Symbolic.Index,
// resolved once per engine), so assembling a new matrix is a handful of
// pointer-free slice writes. Real (float64) and complex (complex128) systems
// share one generic implementation and one symbolic analysis, which is what
// lets the AC sweep's Y = G + jωC reuse the DC Jacobian's pattern.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrStructural reports a pattern with no perfect row/column matching: the
// matrix is singular for every numeric value assignment, so no elimination
// order can factor it.
var ErrStructural = errors.New("sparse: structurally singular pattern")

// ErrSingular reports a zero (or unusably small) pivot during numeric
// factorization under the precomputed static order.
var ErrSingular = errors.New("sparse: singular matrix")

// errNotFactored reports Solve before a successful Factorize.
var errNotFactored = errors.New("sparse: matrix not factorized")

// Builder accumulates the structural nonzero pattern of an n×n system.
type Builder struct {
	n    int
	rows []map[int]struct{}
}

// NewBuilder returns an empty pattern builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("sparse: invalid size %d", n))
	}
	b := &Builder{n: n, rows: make([]map[int]struct{}, n)}
	for i := range b.rows {
		b.rows[i] = map[int]struct{}{}
	}
	return b
}

// Add records a structurally nonzero entry. Negative indices are ignored —
// the MNA ground-row convention, so device pattern enumeration can reuse the
// same row-mapping helpers as stamping.
func (b *Builder) Add(r, c int) {
	if r < 0 || c < 0 {
		return
	}
	if r >= b.n || c >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %d×%d pattern", r, c, b.n, b.n))
	}
	b.rows[r][c] = struct{}{}
}

// Symbolic is the one-time analysis of a pattern: the row/column
// permutations chosen by matching and minimum-degree ordering, and the CSR
// fill pattern of L+U under that order. It is immutable after Analyze; any
// number of Matrix values (real or complex) can share one Symbolic.
type Symbolic struct {
	n int

	rowPerm []int // original row r sits at permuted row rowPerm[r]
	colPerm []int // original col c sits at permuted col colPerm[c]
	rowInv  []int // permuted row i holds original row rowInv[i]

	// L+U pattern in permuted coordinates, rows in CSR with ascending
	// columns; diag[i] is the absolute position of the diagonal of row i.
	rowPtr []int
	cols   []int
	diag   []int

	stamped int // entries in the original pattern (pre-fill), for stats
}

// Analyze runs the symbolic phase: maximum transversal, minimum-degree
// ordering and symbolic fill-in. It returns ErrStructural when the pattern
// admits no structurally nonzero diagonal.
func (b *Builder) Analyze() (*Symbolic, error) {
	n := b.n
	// Deterministic sorted copies of the row patterns (the builder's sets
	// are maps).
	rows := make([][]int, n)
	stamped := 0
	for r, set := range b.rows {
		cs := make([]int, 0, len(set))
		for c := range set {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		rows[r] = cs
		stamped += len(cs)
	}

	colOfRow, err := maximumTransversal(n, rows)
	if err != nil {
		return nil, err
	}
	order := minDegreeOrder(n, rows, colOfRow)

	pos := make([]int, n) // column c is eliminated at position pos[c]
	for k, v := range order {
		pos[v] = k
	}
	s := &Symbolic{
		n:       n,
		rowPerm: make([]int, n),
		colPerm: make([]int, n),
		rowInv:  make([]int, n),
		stamped: stamped,
	}
	for r := 0; r < n; r++ {
		s.rowPerm[r] = pos[colOfRow[r]]
		s.rowInv[s.rowPerm[r]] = r
	}
	for c := 0; c < n; c++ {
		s.colPerm[c] = pos[c]
	}
	s.symbolicFill(rows)
	return s, nil
}

// maximumTransversal matches every column to a distinct row holding a
// structural nonzero in it (MC21-style augmenting paths), so the permuted
// matrix has a fully nonzero diagonal. colOfRow[r] is the column row r
// pivots for.
func maximumTransversal(n int, rows [][]int) ([]int, error) {
	// Column → candidate rows adjacency.
	colRows := make([][]int, n)
	for r, cs := range rows {
		for _, c := range cs {
			colRows[c] = append(colRows[c], r)
		}
	}
	colOfRow := make([]int, n)
	rowOfCol := make([]int, n)
	for i := range colOfRow {
		colOfRow[i] = -1
		rowOfCol[i] = -1
	}
	// Cheap pass: keep rows with a structural diagonal on it. MNA node rows
	// all have one (gmin guarantees it); only branch rows need reassignment,
	// and starting from the diagonal keeps the permutation near-symmetric,
	// which the min-degree heuristic rewards with less fill.
	for r, cs := range rows {
		for _, c := range cs {
			if c == r {
				colOfRow[r] = r
				rowOfCol[r] = r
				break
			}
		}
	}
	seen := make([]bool, n)
	var augment func(c int) bool
	augment = func(c int) bool {
		// Free rows first: stealing a matched row only when no free row
		// exists keeps augmenting paths short. That is a numerical property,
		// not just speed: an MNA voltage-source branch column then always
		// resolves through the source's own ±1 couplings (a two-cycle with
		// its node), and never re-matches node rows onto device-block
		// entries that are structurally present but numerically zero (a
		// MOSFET gate row's drain coupling, say), which would put a zero
		// pivot on the diagonal of the unpivoted factorization.
		for _, r := range colRows[c] {
			if !seen[r] && colOfRow[r] == -1 {
				seen[r] = true
				colOfRow[r] = c
				rowOfCol[c] = r
				return true
			}
		}
		for _, r := range colRows[c] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if augment(colOfRow[r]) {
				colOfRow[r] = c
				rowOfCol[c] = r
				return true
			}
		}
		return false
	}
	for c := 0; c < n; c++ {
		if rowOfCol[c] != -1 {
			continue
		}
		for i := range seen {
			seen[i] = false
		}
		if !augment(c) {
			return nil, fmt.Errorf("%w: no pivot row available for column %d", ErrStructural, c)
		}
	}
	return colOfRow, nil
}

// minDegreeOrder computes a fill-reducing elimination order with a greedy
// minimum-degree heuristic (the symmetric specialization of Markowitz
// pivoting) on the symmetrized pattern of the row-matched matrix. Ties break
// toward the smallest index, keeping the order deterministic.
func minDegreeOrder(n int, rows [][]int, colOfRow []int) []int {
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = map[int]struct{}{}
	}
	for r, cs := range rows {
		i := colOfRow[r] // permuted row index of original row r
		for _, c := range cs {
			if c != i {
				adj[i][c] = struct{}{}
				adj[c][i] = struct{}{}
			}
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if alive[v] && len(adj[v]) < bestDeg {
				best, bestDeg = v, len(adj[v])
			}
		}
		order = append(order, best)
		alive[best] = false
		// Eliminating best turns its neighborhood into a clique — exactly
		// the fill the numeric elimination will create.
		neigh := make([]int, 0, len(adj[best]))
		for u := range adj[best] {
			neigh = append(neigh, u)
		}
		sort.Ints(neigh)
		for _, u := range neigh {
			delete(adj[u], best)
		}
		for a := 0; a < len(neigh); a++ {
			for b := a + 1; b < len(neigh); b++ {
				adj[neigh[a]][neigh[b]] = struct{}{}
				adj[neigh[b]][neigh[a]] = struct{}{}
			}
		}
	}
	return order
}

// symbolicFill computes the row-wise L+U pattern under the fixed order by
// simulating the elimination: row i's pattern is its stamped entries plus,
// for every below-diagonal column k it holds, the above-diagonal pattern of
// (already final) row k.
func (s *Symbolic) symbolicFill(rows [][]int) {
	n := s.n
	luCols := make([][]int, n)
	diagAt := make([]int, n) // index of the diagonal inside luCols[i]
	marked := make([]bool, n)
	for r, cs := range rows {
		i := s.rowPerm[r]
		lst := make([]int, 0, len(cs)+4)
		for _, c := range cs {
			lst = append(lst, s.colPerm[c])
		}
		luCols[i] = lst
	}
	for i := 0; i < n; i++ {
		lst := luCols[i]
		for _, c := range lst {
			marked[c] = true
		}
		// Ascending scan: a fill entry at column j (k < j < i) added while
		// processing k is itself reached later in the same scan.
		for k := 0; k < i; k++ {
			if !marked[k] {
				continue
			}
			up := luCols[k][diagAt[k]+1:]
			for _, j := range up {
				if !marked[j] {
					marked[j] = true
					lst = append(lst, j)
				}
			}
		}
		sort.Ints(lst)
		luCols[i] = lst
		for t, c := range lst {
			marked[c] = false
			if c == i {
				diagAt[i] = t
			}
		}
	}
	s.rowPtr = make([]int, n+1)
	for i, lst := range luCols {
		s.rowPtr[i+1] = s.rowPtr[i] + len(lst)
	}
	s.cols = make([]int, s.rowPtr[n])
	s.diag = make([]int, n)
	for i, lst := range luCols {
		copy(s.cols[s.rowPtr[i]:], lst)
		s.diag[i] = s.rowPtr[i] + diagAt[i]
	}
}

// N returns the system size.
func (s *Symbolic) N() int { return s.n }

// NNZ returns the number of stored entries in L+U (stamped plus fill-in).
func (s *Symbolic) NNZ() int { return len(s.cols) }

// Stamped returns the number of entries in the analyzed (pre-fill) pattern.
func (s *Symbolic) Stamped() int { return s.stamped }

// Trash returns the index of the write-off slot at the end of every value
// array over this pattern: stamps addressed at a ground row or column land
// there, keeping the stamping loops branch-free.
func (s *Symbolic) Trash() int { return len(s.cols) }

// Index returns the value-array position of entry (r, c) in original
// coordinates, resolving the row/column permutations and the CSR layout.
// Negative indices return the trash slot (the MNA ground convention). An
// entry outside the analyzed pattern is a programming error and panics:
// stamp pointers must be resolved against the same pattern that was built.
func (s *Symbolic) Index(r, c int) int {
	if r < 0 || c < 0 {
		return s.Trash()
	}
	i, j := s.rowPerm[r], s.colPerm[c]
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	row := s.cols[lo:hi]
	k := sort.SearchInts(row, j)
	if k == len(row) || row[k] != j {
		panic(fmt.Sprintf("sparse: entry (%d,%d) not in analyzed pattern", r, c))
	}
	return lo + k
}

// Scalar is the element type of a sparse system: the DC Jacobian is real,
// the AC admittance matrix complex.
type Scalar interface {
	float64 | complex128
}

// Matrix holds numeric values over a shared Symbolic pattern plus the
// scratch needed to refactor and solve without allocation. Factorize runs in
// place over the value array (values are re-stamped before every solve in
// the MNA use), so a Matrix is not safe for concurrent use.
type Matrix[T Scalar] struct {
	sym  *Symbolic
	vals []T // len NNZ()+1; the last element is the write-off slot
	w    []T // dense scatter row
	inv  []T // per-row pivot reciprocals
	pb   []T // permuted right-hand side
	ok   bool
}

// NewMatrix returns a zero matrix over the analyzed pattern.
func NewMatrix[T Scalar](s *Symbolic) *Matrix[T] {
	return &Matrix[T]{
		sym:  s,
		vals: make([]T, s.NNZ()+1),
		w:    make([]T, s.n),
		inv:  make([]T, s.n),
		pb:   make([]T, s.n),
	}
}

// Symbolic returns the shared pattern.
func (m *Matrix[T]) Symbolic() *Symbolic { return m.sym }

// Values exposes the value array for direct stamping through indices from
// Symbolic.Index. Its last element is the write-off slot.
func (m *Matrix[T]) Values() []T { return m.vals }

// Zero clears all values (including the write-off slot), keeping the
// allocation and the factorization pattern.
func (m *Matrix[T]) Zero() {
	for i := range m.vals {
		m.vals[i] = 0
	}
	m.ok = false
}

// Factorize runs the numeric LU elimination in place inside the precomputed
// fill pattern: no pivot search, no allocation — the refactorization path
// that amortizes the symbolic analysis over every Newton iteration and AC
// frequency point. The stamped values are overwritten by the factors.
func (m *Matrix[T]) Factorize() error {
	s := m.sym
	vals, w, inv, cols := m.vals, m.w, m.inv, s.cols
	m.ok = false
	for i := 0; i < s.n; i++ {
		start, end, dp := s.rowPtr[i], s.rowPtr[i+1], s.diag[i]
		for t := start; t < end; t++ {
			w[cols[t]] = vals[t]
		}
		for t := start; t < dp; t++ {
			k := cols[t]
			lik := w[k] * inv[k]
			w[k] = lik
			if lik == 0 {
				continue
			}
			for u := s.diag[k] + 1; u < s.rowPtr[k+1]; u++ {
				w[cols[u]] -= lik * vals[u]
			}
		}
		for t := start; t < end; t++ {
			vals[t] = w[cols[t]]
		}
		d := vals[dp]
		if badPivot(d) {
			return fmt.Errorf("%w: zero pivot at permuted row %d", ErrSingular, i)
		}
		r := T(1) / d
		if infValue(r) {
			// A subnormal pivot whose reciprocal overflows: numerically
			// indistinguishable from singular at working precision.
			return fmt.Errorf("%w: subnormal pivot at permuted row %d", ErrSingular, i)
		}
		inv[i] = r
	}
	m.ok = true
	return nil
}

// Solve overwrites b (in original index order) with the solution of A x = b
// using the current factorization: permute, forward- and back-substitute,
// permute back. It allocates nothing.
func (m *Matrix[T]) Solve(b []T) error {
	if !m.ok {
		return errNotFactored
	}
	s := m.sym
	n := s.n
	if len(b) < n {
		return fmt.Errorf("sparse: rhs length %d < %d", len(b), n)
	}
	vals, cols, pb := m.vals, s.cols, m.pb
	for i := 0; i < n; i++ {
		pb[i] = b[s.rowInv[i]]
	}
	for i := 1; i < n; i++ {
		sum := pb[i]
		for t := s.rowPtr[i]; t < s.diag[i]; t++ {
			sum -= vals[t] * pb[cols[t]]
		}
		pb[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := pb[i]
		for t := s.diag[i] + 1; t < s.rowPtr[i+1]; t++ {
			sum -= vals[t] * pb[cols[t]]
		}
		pb[i] = sum * m.inv[i]
	}
	for c := 0; c < n; c++ {
		b[c] = pb[s.colPerm[c]]
	}
	return nil
}

// FactorSolve factors the stamped values and solves one right-hand side —
// the per-Newton-iteration primitive.
func (m *Matrix[T]) FactorSolve(b []T) error {
	if err := m.Factorize(); err != nil {
		return err
	}
	return m.Solve(b)
}

// badPivot and infValue run once per pivot per factorization — on a small
// MNA pattern that is a meaningful slice of the whole solve, so they avoid
// the `any` boxing of a type switch on the type parameter and the
// math/cmplx calls. The comparisons are semantically identical to the
// originals (v == 0 || IsNaN for badPivot, IsInf for infValue): x != x is
// the branch-free NaN test, and cmplx.IsNaN's "no NaN verdict when a part
// is Inf" rule is preserved by checking Inf first.
func badPivot[T Scalar](d T) bool {
	switch v := any(d).(type) {
	case float64:
		return v == 0 || v != v
	case complex128:
		re, im := real(v), imag(v)
		if v == 0 {
			return true
		}
		if re > math.MaxFloat64 || re < -math.MaxFloat64 || im > math.MaxFloat64 || im < -math.MaxFloat64 {
			// A part is ±Inf: cmplx.IsNaN reports false for such values.
			return false
		}
		return re != re || im != im
	}
	return false
}

func infValue[T Scalar](r T) bool {
	switch v := any(r).(type) {
	case float64:
		return v > math.MaxFloat64 || v < -math.MaxFloat64
	case complex128:
		re, im := real(v), imag(v)
		return re > math.MaxFloat64 || re < -math.MaxFloat64 || im > math.MaxFloat64 || im < -math.MaxFloat64
	}
	return false
}
