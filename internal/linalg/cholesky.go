package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite reports a failed Cholesky factorization.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a, such that L·Lᵀ = a. The input is not
// modified. It is used to impose correlation structures on the inter-die
// process variables (ξ_corr = L·ξ with ξ ~ N(0, I) gives Cov = a).
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// LowerMulVec returns L·x for a lower-triangular matrix, exploiting the
// structure (half the work of a general MulVec).
func LowerMulVec(l *Matrix, x []float64) []float64 {
	n := l.Rows
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := l.Data[i*l.Cols : i*l.Cols+i+1]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}
