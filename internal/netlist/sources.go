package netlist

// Pulse is a SPICE PULSE(...) time-dependent source description, used by
// the transient analysis of the MNA engine. All times in seconds.
type Pulse struct {
	V1, V2                   float64 // initial and pulsed value
	Delay, Rise, Fall, Width float64
	Period                   float64 // 0 means single pulse
}

// Value returns the pulse value at time t.
func (p *Pulse) Value(t float64) float64 {
	if t < p.Delay {
		return p.V1
	}
	tt := t - p.Delay
	if p.Period > 0 {
		for tt >= p.Period {
			tt -= p.Period
		}
	}
	switch {
	case tt < p.Rise:
		if p.Rise <= 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.V2
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall <= 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// SourceValue returns the source value at time t: the DC value unless a
// pulse is attached. Negative t (the DC analysis) always returns DC.
func (v *VSource) SourceValue(t float64) float64 {
	if t < 0 || v.Pulse == nil {
		return v.DC
	}
	return v.Pulse.Value(t)
}

// SourceValue returns the current-source value at time t.
func (i *ISource) SourceValue(t float64) float64 {
	if t < 0 || i.Pulse == nil {
		return i.DC
	}
	return i.Pulse.Value(t)
}

// DevicePulse returns the pulse waveform attached to a V or I source, nil
// for any other device (or an un-pulsed source) — the one lookup the
// transient breakpoint scan and the CLI's measure-reference search share,
// so a new pulse-capable device extends both at once.
func DevicePulse(d Device) *Pulse {
	switch t := d.(type) {
	case *VSource:
		return t.Pulse
	case *ISource:
		return t.Pulse
	}
	return nil
}
