package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/eda-go/moheco/internal/mos"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10},
		{"10u", 1e-5},
		{"2.2n", 2.2e-9},
		{"3p", 3e-12},
		{"1.5f", 1.5e-15},
		{"4k", 4000},
		{"2meg", 2e6},
		{"1g", 1e9},
		{"1t", 1e12},
		{"-3m", -3e-3},
		{"1e-6", 1e-6},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want)+1e-30 {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "10x3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

// Property: FormatValue round-trips through ParseValue.
func TestValueRoundTrip(t *testing.T) {
	f := func(mant int32, exp uint8) bool {
		v := float64(mant) / 1000 * math.Pow(10, float64(int(exp%24))-12)
		s := FormatValue(v)
		back, err := ParseValue(s)
		if err != nil {
			return false
		}
		if v == 0 {
			return back == 0
		}
		return math.Abs(back-v) <= 1e-9*math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodeTable(t *testing.T) {
	c := New("t")
	if c.Node("0") != Ground || c.Node("gnd") != Ground {
		t.Error("ground aliases broken")
	}
	a := c.Node("a")
	if b := c.Node("a"); b != a {
		t.Error("Node not idempotent")
	}
	if _, ok := c.FindNode("zzz"); ok {
		t.Error("FindNode invented a node")
	}
	if c.NodeName(a) != "a" {
		t.Errorf("NodeName = %q", c.NodeName(a))
	}
	if !strings.Contains(c.NodeName(99), "99") {
		t.Error("NodeName should render unknown indices")
	}
}

const demoNetlist = `* demo divider
V1 in 0 2.0 ac 1
R1 in out 1k
R2 out 0 1k
C1 out 0 1p
.end
`

func TestParseDivider(t *testing.T) {
	c, err := Parse(strings.NewReader(demoNetlist), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.Title != "demo divider" {
		t.Errorf("title = %q", c.Title)
	}
	if len(c.Devices) != 4 {
		t.Fatalf("devices = %d", len(c.Devices))
	}
	v, ok := c.Devices[0].(*VSource)
	if !ok || v.DC != 2.0 || v.ACMag != 1 {
		t.Errorf("vsource parsed wrong: %+v", c.Devices[0])
	}
	r, ok := c.Devices[1].(*Resistor)
	if !ok || r.R != 1000 {
		t.Errorf("resistor parsed wrong: %+v", c.Devices[1])
	}
}

func TestParseMosfetWithModelCard(t *testing.T) {
	src := `* mos test
.model nch nmos VTH0=0.55 U0=0.04 TOX=7.6n LAMBDA0=0.06 GAMMA=0.58 PHI=0.85
V1 vdd 0 3.3
M1 out in 0 0 nch W=10u L=1u M=2
R1 vdd out 10k
V2 in 0 1.0
.end
`
	c, err := Parse(strings.NewReader(src), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var m *Mosfet
	for _, d := range c.Devices {
		if mm, ok := d.(*Mosfet); ok {
			m = mm
		}
	}
	if m == nil {
		t.Fatal("no mosfet parsed")
	}
	if math.Abs(m.Dev.W-10e-6) > 1e-16 || math.Abs(m.Dev.L-1e-6) > 1e-16 || m.Dev.M != 2 {
		t.Errorf("geometry: W=%v L=%v M=%v", m.Dev.W, m.Dev.L, m.Dev.M)
	}
	if m.Dev.Params.VTH0 != 0.55 {
		t.Errorf("VTH0 = %v", m.Dev.Params.VTH0)
	}
}

func TestParseWithExternalModels(t *testing.T) {
	models := map[string]*mos.Params{
		"nch": {Name: "nch", VTH0: 0.5, U0: 0.04, TOX: 8e-9, Lambda0: 0.06, Gamma: 0.5, Phi: 0.8},
	}
	src := "M1 d g 0 0 nch W=5u L=0.5u\nV1 d 0 1\nV2 g 0 1\n.end\n"
	if _, err := Parse(strings.NewReader(src), models); err != nil {
		t.Fatalf("parse with external models: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"Q1 a b c 5\n",                  // unknown card
		"R1 a b\n",                      // missing value
		"R1 a b xx\n",                   // bad value
		"M1 d g s b nope W=1u L=1u\n",   // unknown model
		"E1 a b c 5\n",                  // wrong field count
		".model foo bar\n",              // bad model type
		"M1 d g s b nch L=1u\nV1 d 0 1", // missing W (model known)
	}
	models := map[string]*mos.Params{"nch": {Name: "nch", VTH0: 0.5, U0: 0.03, TOX: 5e-9}}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src), models); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestValidate(t *testing.T) {
	c := New("v")
	c.AddR("R1", "a", "b", 1000)
	if err := c.Validate(); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	c.AddR("R1", "a", "b", 1) // duplicate
	if err := c.Validate(); err == nil {
		t.Error("duplicate name accepted")
	}
	c2 := New("v2")
	c2.AddR("R1", "a", "b", -5)
	if err := c2.Validate(); err == nil {
		t.Error("negative resistor accepted")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := New("round trip")
	c.AddV("V1", "vdd", "0", 3.3, 0)
	c.AddV("Vin", "in", "0", 1.65, 1)
	c.AddR("R1", "vdd", "out", 10e3)
	c.AddC("C1", "out", "0", 2e-12)
	c.AddI("I1", "vdd", "out", 10e-6, 0)
	c.AddE("E1", "x", "0", "out", "0", 10)
	c.AddG("G1", "out", "0", "in", "0", 1e-3)
	p := &mos.Params{Name: "nch", VTH0: 0.55, U0: 0.04, TOX: 7.6e-9, Lambda0: 0.06, Gamma: 0.58, Phi: 0.85}
	c.AddM("M1", "out", "in", "0", "0", p, 10e-6, 1e-6, 1)

	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("write: %v", err)
	}
	c2, err := Parse(strings.NewReader(buf.String()), map[string]*mos.Params{"nch": p})
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(c2.Devices) != len(c.Devices) {
		t.Fatalf("device count %d != %d", len(c2.Devices), len(c.Devices))
	}
	if c2.Title != "round trip" {
		t.Errorf("title = %q", c2.Title)
	}
	// Values survive.
	r2 := c2.Devices[2].(*Resistor)
	if math.Abs(r2.R-10e3) > 1e-6 {
		t.Errorf("R = %v", r2.R)
	}
	m2 := c2.Devices[7].(*Mosfet)
	if math.Abs(m2.Dev.W-10e-6) > 1e-18 {
		t.Errorf("W = %v", m2.Dev.W)
	}
}

func TestParsePulseSources(t *testing.T) {
	src := `* pulses
V1 in 0 0 pulse 0 3.3 1n 0.5n 0.5n 10n 20n
I1 in 0 1u ac 2 pulse 0 1m 0 1n 1n 5n
R1 in 0 1k
.end
`
	c, err := Parse(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	v := c.Devices[0].(*VSource)
	if v.Pulse == nil {
		t.Fatal("V1 pulse not parsed")
	}
	if v.Pulse.V2 != 3.3 || math.Abs(v.Pulse.Period-20e-9) > 1e-18 {
		t.Errorf("pulse = %+v", v.Pulse)
	}
	i := c.Devices[1].(*ISource)
	if i.ACMag != 2 || i.Pulse == nil || i.Pulse.V2 != 1e-3 {
		t.Errorf("isource = %+v pulse %+v", i, i.Pulse)
	}
	if i.Pulse.Period != 0 {
		t.Errorf("7-value pulse should have no period: %v", i.Pulse.Period)
	}
	// Source values honour the waveform only at t ≥ 0.
	if v.SourceValue(-1) != 0 || v.SourceValue(5e-9) != 3.3 {
		t.Errorf("source values: %v / %v", v.SourceValue(-1), v.SourceValue(5e-9))
	}
	// Bad pulse (missing fields) must fail.
	if _, err := Parse(strings.NewReader("V1 a 0 1 pulse 0 1 2\n"), nil); err == nil {
		t.Error("short pulse accepted")
	}
	if _, err := Parse(strings.NewReader("V1 a 0 1 bogus\n"), nil); err == nil {
		t.Error("trailing junk accepted")
	}
}
