// Package netlist provides the circuit data model consumed by the MNA engine
// in internal/spice: named nodes, passive and active devices, and a
// SPICE-like text format parser/writer so circuits can be described in files
// (the role HSPICE decks play in the paper's flow).
package netlist

import (
	"fmt"

	"github.com/eda-go/moheco/internal/mos"
)

// Ground is the node index of the reference node "0".
const Ground = 0

// Circuit is a flat netlist: a node table plus a device list.
type Circuit struct {
	Title   string
	nodes   map[string]int
	names   []string
	Devices []Device
	Models  map[string]*mos.Params
}

// New returns an empty circuit containing only the ground node.
func New(title string) *Circuit {
	c := &Circuit{
		Title:  title,
		nodes:  map[string]int{"0": Ground, "gnd": Ground, "GND": Ground},
		names:  []string{"0"},
		Models: map[string]*mos.Params{},
	}
	return c
}

// Node returns the index for name, creating the node on first use.
func (c *Circuit) Node(name string) int {
	if i, ok := c.nodes[name]; ok {
		return i
	}
	i := len(c.names)
	c.nodes[name] = i
	c.names = append(c.names, name)
	return i
}

// FindNode returns the index for name without creating it.
func (c *Circuit) FindNode(name string) (int, bool) {
	i, ok := c.nodes[name]
	return i, ok
}

// NodeName returns the name of node i.
func (c *Circuit) NodeName(i int) string {
	if i < 0 || i >= len(c.names) {
		return fmt.Sprintf("node#%d", i)
	}
	return c.names[i]
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// Device is any circuit element.
type Device interface {
	// DevName returns the instance name (R1, M3, ...).
	DevName() string
}

// Resistor is a two-terminal linear resistor.
type Resistor struct {
	Name   string
	N1, N2 int
	R      float64 // Ω
}

// DevName implements Device.
func (r *Resistor) DevName() string { return r.Name }

// Capacitor is a two-terminal linear capacitor.
type Capacitor struct {
	Name   string
	N1, N2 int
	C      float64 // F
}

// DevName implements Device.
func (c *Capacitor) DevName() string { return c.Name }

// VSource is an independent voltage source (positive terminal NP).
type VSource struct {
	Name   string
	NP, NN int
	DC     float64 // V
	ACMag  float64 // AC analysis magnitude (V)
	Pulse  *Pulse  // optional transient waveform
}

// DevName implements Device.
func (v *VSource) DevName() string { return v.Name }

// ISource is an independent current source; DC amps flow from NP through the
// source to NN (SPICE convention).
type ISource struct {
	Name   string
	NP, NN int
	DC     float64
	ACMag  float64
	Pulse  *Pulse // optional transient waveform
}

// DevName implements Device.
func (i *ISource) DevName() string { return i.Name }

// VCVS is a voltage-controlled voltage source (E element).
type VCVS struct {
	Name     string
	NP, NN   int
	NCP, NCN int
	Gain     float64
}

// DevName implements Device.
func (e *VCVS) DevName() string { return e.Name }

// VCCS is a voltage-controlled current source (G element); current Gm·Vc
// flows from NP through the source to NN.
type VCCS struct {
	Name     string
	NP, NN   int
	NCP, NCN int
	Gm       float64
}

// DevName implements Device.
func (g *VCCS) DevName() string { return g.Name }

// Mosfet is a four-terminal MOS transistor instance.
type Mosfet struct {
	Name       string
	D, G, S, B int
	Dev        mos.Device // model card + geometry
}

// DevName implements Device.
func (m *Mosfet) DevName() string { return m.Name }

// Add appends a device.
func (c *Circuit) Add(d Device) { c.Devices = append(c.Devices, d) }

// AddR adds a resistor between named nodes.
func (c *Circuit) AddR(name, n1, n2 string, r float64) *Resistor {
	d := &Resistor{Name: name, N1: c.Node(n1), N2: c.Node(n2), R: r}
	c.Add(d)
	return d
}

// AddC adds a capacitor between named nodes.
func (c *Circuit) AddC(name, n1, n2 string, f float64) *Capacitor {
	d := &Capacitor{Name: name, N1: c.Node(n1), N2: c.Node(n2), C: f}
	c.Add(d)
	return d
}

// AddV adds a voltage source.
func (c *Circuit) AddV(name, np, nn string, dc, acMag float64) *VSource {
	d := &VSource{Name: name, NP: c.Node(np), NN: c.Node(nn), DC: dc, ACMag: acMag}
	c.Add(d)
	return d
}

// AddI adds a current source.
func (c *Circuit) AddI(name, np, nn string, dc, acMag float64) *ISource {
	d := &ISource{Name: name, NP: c.Node(np), NN: c.Node(nn), DC: dc, ACMag: acMag}
	c.Add(d)
	return d
}

// AddE adds a voltage-controlled voltage source.
func (c *Circuit) AddE(name, np, nn, ncp, ncn string, gain float64) *VCVS {
	d := &VCVS{Name: name, NP: c.Node(np), NN: c.Node(nn), NCP: c.Node(ncp), NCN: c.Node(ncn), Gain: gain}
	c.Add(d)
	return d
}

// AddG adds a voltage-controlled current source.
func (c *Circuit) AddG(name, np, nn, ncp, ncn string, gm float64) *VCCS {
	d := &VCCS{Name: name, NP: c.Node(np), NN: c.Node(nn), NCP: c.Node(ncp), NCN: c.Node(ncn), Gm: gm}
	c.Add(d)
	return d
}

// AddM adds a MOSFET with the given model card and geometry.
func (c *Circuit) AddM(name, d, g, s, b string, params *mos.Params, w, l, m float64) *Mosfet {
	dev := &Mosfet{
		Name: name,
		D:    c.Node(d), G: c.Node(g), S: c.Node(s), B: c.Node(b),
		Dev: mos.Device{Params: params, W: w, L: l, M: m},
	}
	c.Add(dev)
	return dev
}

// Validate performs basic sanity checks (every device touching valid nodes,
// unique instance names) and returns the first problem found.
func (c *Circuit) Validate() error {
	seen := map[string]bool{}
	check := func(name string, nodes ...int) error {
		if name == "" {
			return fmt.Errorf("netlist: unnamed device")
		}
		if seen[name] {
			return fmt.Errorf("netlist: duplicate device name %q", name)
		}
		seen[name] = true
		for _, n := range nodes {
			if n < 0 || n >= c.NumNodes() {
				return fmt.Errorf("netlist: device %q references invalid node %d", name, n)
			}
		}
		return nil
	}
	for _, d := range c.Devices {
		var err error
		switch t := d.(type) {
		case *Resistor:
			err = check(t.Name, t.N1, t.N2)
			if err == nil && t.R <= 0 {
				err = fmt.Errorf("netlist: resistor %q has non-positive value", t.Name)
			}
		case *Capacitor:
			err = check(t.Name, t.N1, t.N2)
			if err == nil && t.C < 0 {
				err = fmt.Errorf("netlist: capacitor %q has negative value", t.Name)
			}
		case *VSource:
			err = check(t.Name, t.NP, t.NN)
		case *ISource:
			err = check(t.Name, t.NP, t.NN)
		case *VCVS:
			err = check(t.Name, t.NP, t.NN, t.NCP, t.NCN)
		case *VCCS:
			err = check(t.Name, t.NP, t.NN, t.NCP, t.NCN)
		case *Mosfet:
			err = check(t.Name, t.D, t.G, t.S, t.B)
			if err == nil && (t.Dev.Params == nil || t.Dev.W <= 0 || t.Dev.L <= 0) {
				err = fmt.Errorf("netlist: mosfet %q has invalid model or geometry", t.Name)
			}
		default:
			err = fmt.Errorf("netlist: unknown device type %T", d)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
