package netlist_test

import (
	"fmt"

	"github.com/eda-go/moheco/internal/netlist"
)

// SPICE-style engineering suffixes parse to SI values.
func ExampleParseValue() {
	for _, s := range []string{"10u", "2.2k", "3meg", "150p"} {
		v, err := netlist.ParseValue(s)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s = %.4g\n", s, v)
	}
	// Output:
	// 10u = 1e-05
	// 2.2k = 2200
	// 3meg = 3e+06
	// 150p = 1.5e-10
}
