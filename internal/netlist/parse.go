package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/eda-go/moheco/internal/mos"
)

// ParseValue parses a SPICE-style number with an optional engineering suffix
// (f p n u m k meg g t, case-insensitive). "10u" → 1e-5.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("netlist: empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, s[:len(s)-1]
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, s[:len(s)-1]
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, s[:len(s)-1]
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1e12, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("netlist: bad value %q", s)
	}
	return v * mult, nil
}

// FormatValue renders v with an engineering suffix, the inverse of ParseValue.
func FormatValue(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e12:
		return trim(v/1e12) + "t"
	case a >= 1e9:
		return trim(v/1e9) + "g"
	case a >= 1e6:
		return trim(v/1e6) + "meg"
	case a >= 1e3:
		return trim(v/1e3) + "k"
	case a >= 1:
		return trim(v)
	case a >= 1e-3:
		return trim(v*1e3) + "m"
	case a >= 1e-6:
		return trim(v*1e6) + "u"
	case a >= 1e-9:
		return trim(v*1e9) + "n"
	case a >= 1e-12:
		return trim(v*1e12) + "p"
	default:
		return trim(v*1e15) + "f"
	}
}

func trim(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// Parse reads a SPICE-like netlist. Supported cards:
//
//   - comment                        (also ; and lines starting with .title)
//     R<name> n1 n2 value
//     C<name> n1 n2 value
//     V<name> np nn dc [ac mag] [pulse v1 v2 td tr tf pw [per]]
//     I<name> np nn dc [ac mag] [pulse v1 v2 td tr tf pw [per]]
//     E<name> np nn ncp ncn gain
//     G<name> np nn ncp ncn gm
//     M<name> d g s b model W=.. L=.. [M=..]
//     .model name nmos|pmos [VTH0=..] [U0=..] [TOX=..] [LAMBDA0=..] [GAMMA=..]
//     [PHI=..] [LD=..] [WD=..] [CJ=..] [CJSW=..] [CGSO=..] [CGDO=..]
//     .end
//
// extraModels supplies pre-built model cards referenced by M lines (for
// technology decks defined in code); .model lines add to/override them.
func Parse(r io.Reader, extraModels map[string]*mos.Params) (*Circuit, error) {
	c := New("")
	for name, m := range extraModels {
		c.Models[name] = m
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, ";") {
			if first && strings.HasPrefix(line, "*") {
				c.Title = strings.TrimSpace(strings.TrimPrefix(line, "*"))
			}
			first = false
			continue
		}
		first = false
		if err := c.parseLine(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Circuit) parseLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	head := fields[0]
	lower := strings.ToLower(head)
	switch {
	case lower == ".end":
		return nil
	case lower == ".title":
		c.Title = strings.Join(fields[1:], " ")
		return nil
	case lower == ".model":
		return c.parseModel(fields[1:])
	case strings.HasPrefix(lower, "r"):
		return c.parseTwoTerm(fields, func(n1, n2 int, v float64) {
			c.Add(&Resistor{Name: head, N1: n1, N2: n2, R: v})
		})
	case strings.HasPrefix(lower, "c"):
		return c.parseTwoTerm(fields, func(n1, n2 int, v float64) {
			c.Add(&Capacitor{Name: head, N1: n1, N2: n2, C: v})
		})
	case strings.HasPrefix(lower, "v"):
		dc, ac, pulse, n1, n2, err := c.parseSource(fields)
		if err != nil {
			return err
		}
		c.Add(&VSource{Name: head, NP: n1, NN: n2, DC: dc, ACMag: ac, Pulse: pulse})
		return nil
	case strings.HasPrefix(lower, "i"):
		dc, ac, pulse, n1, n2, err := c.parseSource(fields)
		if err != nil {
			return err
		}
		c.Add(&ISource{Name: head, NP: n1, NN: n2, DC: dc, ACMag: ac, Pulse: pulse})
		return nil
	case strings.HasPrefix(lower, "e"), strings.HasPrefix(lower, "g"):
		if len(fields) != 6 {
			return fmt.Errorf("%s: want 6 fields, got %d", head, len(fields))
		}
		v, err := ParseValue(fields[5])
		if err != nil {
			return err
		}
		np, nn := c.Node(fields[1]), c.Node(fields[2])
		ncp, ncn := c.Node(fields[3]), c.Node(fields[4])
		if strings.HasPrefix(lower, "e") {
			c.Add(&VCVS{Name: head, NP: np, NN: nn, NCP: ncp, NCN: ncn, Gain: v})
		} else {
			c.Add(&VCCS{Name: head, NP: np, NN: nn, NCP: ncp, NCN: ncn, Gm: v})
		}
		return nil
	case strings.HasPrefix(lower, "m"):
		return c.parseMosfet(fields)
	default:
		return fmt.Errorf("unsupported card %q", head)
	}
}

func (c *Circuit) parseTwoTerm(fields []string, add func(n1, n2 int, v float64)) error {
	if len(fields) != 4 {
		return fmt.Errorf("%s: want 4 fields, got %d", fields[0], len(fields))
	}
	v, err := ParseValue(fields[3])
	if err != nil {
		return err
	}
	add(c.Node(fields[1]), c.Node(fields[2]), v)
	return nil
}

func (c *Circuit) parseSource(fields []string) (dc, ac float64, pulse *Pulse, n1, n2 int, err error) {
	if len(fields) < 4 {
		return 0, 0, nil, 0, 0, fmt.Errorf("%s: want at least 4 fields", fields[0])
	}
	n1, n2 = c.Node(fields[1]), c.Node(fields[2])
	dc, err = ParseValue(fields[3])
	if err != nil {
		return
	}
	rest := fields[4:]
	for len(rest) > 0 {
		switch {
		case strings.EqualFold(rest[0], "ac") && len(rest) >= 2:
			ac, err = ParseValue(rest[1])
			if err != nil {
				return
			}
			rest = rest[2:]
		case strings.EqualFold(rest[0], "pulse") && len(rest) >= 7:
			vals := make([]float64, 0, 7)
			n := 7
			if len(rest) >= 8 {
				n = 8
			}
			for _, f := range rest[1:n] {
				v, perr := ParseValue(f)
				if perr != nil {
					err = perr
					return
				}
				vals = append(vals, v)
			}
			pulse = &Pulse{V1: vals[0], V2: vals[1], Delay: vals[2], Rise: vals[3], Fall: vals[4], Width: vals[5]}
			if len(vals) == 7 {
				pulse.Period = vals[6]
			}
			rest = rest[n:]
		default:
			err = fmt.Errorf("%s: unexpected token %q", fields[0], rest[0])
			return
		}
	}
	return
}

func (c *Circuit) parseMosfet(fields []string) error {
	if len(fields) < 7 {
		return fmt.Errorf("%s: want M d g s b model W=.. L=..", fields[0])
	}
	model, ok := c.Models[fields[5]]
	if !ok {
		return fmt.Errorf("%s: unknown model %q", fields[0], fields[5])
	}
	w, l, m := 0.0, 0.0, 1.0
	for _, kv := range fields[6:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("%s: bad parameter %q", fields[0], kv)
		}
		v, err := ParseValue(parts[1])
		if err != nil {
			return err
		}
		switch strings.ToUpper(parts[0]) {
		case "W":
			w = v
		case "L":
			l = v
		case "M":
			m = v
		default:
			return fmt.Errorf("%s: unknown parameter %q", fields[0], parts[0])
		}
	}
	if w <= 0 || l <= 0 {
		return fmt.Errorf("%s: W and L are required and positive", fields[0])
	}
	c.Add(&Mosfet{
		Name: fields[0],
		D:    c.Node(fields[1]), G: c.Node(fields[2]),
		S: c.Node(fields[3]), B: c.Node(fields[4]),
		Dev: mos.Device{Params: model, W: w, L: l, M: m},
	})
	return nil
}

func (c *Circuit) parseModel(fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf(".model: want name and type")
	}
	p := &mos.Params{Name: fields[0]}
	switch strings.ToLower(fields[1]) {
	case "nmos":
		p.PMOS = false
	case "pmos":
		p.PMOS = true
	default:
		return fmt.Errorf(".model: unknown type %q", fields[1])
	}
	// Reasonable defaults so partial cards are usable.
	p.VTH0, p.U0, p.TOX = 0.5, 0.03, 5e-9
	p.Lambda0, p.Gamma, p.Phi = 0.1, 0.4, 0.8
	for _, kv := range fields[2:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf(".model: bad parameter %q", kv)
		}
		v, err := ParseValue(parts[1])
		if err != nil {
			return err
		}
		switch strings.ToUpper(parts[0]) {
		case "VTH0":
			p.VTH0 = v
		case "U0":
			p.U0 = v
		case "TOX":
			p.TOX = v
		case "LAMBDA0":
			p.Lambda0 = v
		case "GAMMA":
			p.Gamma = v
		case "PHI":
			p.Phi = v
		case "LD":
			p.LD = v
		case "WD":
			p.WD = v
		case "CJ":
			p.CJ = v
		case "CJSW":
			p.CJSW = v
		case "CGSO":
			p.CGSO = v
		case "CGDO":
			p.CGDO = v
		case "RDIFF":
			p.RDiff = v
		case "LDIFF":
			p.LDiff = v
		default:
			return fmt.Errorf(".model: unknown parameter %q", parts[0])
		}
	}
	c.Models[p.Name] = p
	return nil
}

// Write renders the circuit back to the text format accepted by Parse.
func Write(w io.Writer, c *Circuit) error {
	if _, err := fmt.Fprintf(w, "* %s\n", c.Title); err != nil {
		return err
	}
	for _, d := range c.Devices {
		var line string
		switch t := d.(type) {
		case *Resistor:
			line = fmt.Sprintf("%s %s %s %s", t.Name, c.NodeName(t.N1), c.NodeName(t.N2), FormatValue(t.R))
		case *Capacitor:
			line = fmt.Sprintf("%s %s %s %s", t.Name, c.NodeName(t.N1), c.NodeName(t.N2), FormatValue(t.C))
		case *VSource:
			line = fmt.Sprintf("%s %s %s %s", t.Name, c.NodeName(t.NP), c.NodeName(t.NN), FormatValue(t.DC))
			if t.ACMag != 0 {
				line += " ac " + FormatValue(t.ACMag)
			}
		case *ISource:
			line = fmt.Sprintf("%s %s %s %s", t.Name, c.NodeName(t.NP), c.NodeName(t.NN), FormatValue(t.DC))
			if t.ACMag != 0 {
				line += " ac " + FormatValue(t.ACMag)
			}
		case *VCVS:
			line = fmt.Sprintf("%s %s %s %s %s %s", t.Name, c.NodeName(t.NP), c.NodeName(t.NN),
				c.NodeName(t.NCP), c.NodeName(t.NCN), FormatValue(t.Gain))
		case *VCCS:
			line = fmt.Sprintf("%s %s %s %s %s %s", t.Name, c.NodeName(t.NP), c.NodeName(t.NN),
				c.NodeName(t.NCP), c.NodeName(t.NCN), FormatValue(t.Gm))
		case *Mosfet:
			line = fmt.Sprintf("%s %s %s %s %s %s W=%s L=%s M=%s", t.Name,
				c.NodeName(t.D), c.NodeName(t.G), c.NodeName(t.S), c.NodeName(t.B),
				t.Dev.Params.Name, FormatValue(t.Dev.W), FormatValue(t.Dev.L), FormatValue(t.Dev.M))
		default:
			return fmt.Errorf("netlist: cannot write device %T", d)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".end")
	return err
}
