// Package moheco is the public API of the MOHECO yield-optimization library,
// a from-scratch Go reproduction of "An Accurate and Efficient Yield
// Optimization Method for Analog Circuits Based on Computing Budget
// Allocation and Memetic Search Technique" (Liu, Fernández, Gielen,
// DATE 2010).
//
// MOHECO sizes analog circuits for maximum manufacturing yield under
// process variations. It keeps the accuracy and generality of Monte-Carlo
// yield estimation while spending a fraction of the simulations of a
// fixed-budget MC flow, by (1) distributing each generation's simulation
// budget over the candidate population with the OCBA rule of ordinal
// optimization, in a two-stage estimation flow, and (2) accelerating the
// evolutionary search with a Nelder–Mead memetic operator applied to the
// best member when differential evolution stalls.
//
// # Quick start
//
//	p := moheco.NewCommonSourceProblem()
//	opts := moheco.DefaultOptions(moheco.MethodMOHECO, 500)
//	opts.Seed = 1
//	res, err := moheco.Optimize(p, opts)
//	if err != nil { ... }
//	fmt.Printf("yield %.2f%% in %d simulations\n", 100*res.BestYield, res.TotalSims)
//
// The paper's two benchmark circuits are available through
// NewFoldedCascodeProblem (example 1, 0.35µm) and NewTelescopicProblem
// (example 2, 90nm). Custom circuits implement the Problem interface.
package moheco

import (
	"github.com/eda-go/moheco/internal/circuits"
	"github.com/eda-go/moheco/internal/constraint"
	"github.com/eda-go/moheco/internal/core"
	_ "github.com/eda-go/moheco/internal/lineasybo" // register the BO optimizer backend
	"github.com/eda-go/moheco/internal/problem"
	"github.com/eda-go/moheco/internal/yieldsim"
)

// Problem describes a yield-optimization problem: a bounded design space, a
// specification list, a process-variation space, and a performance
// evaluator. See the package documentation of internal/problem for the full
// contract.
type Problem = problem.Problem

// Spec is one performance specification (e.g. "A0 ≥ 70 dB").
type Spec = constraint.Spec

// Specification senses.
const (
	AtLeast = constraint.AtLeast
	AtMost  = constraint.AtMost
)

// Method selects the optimization strategy.
type Method = core.Method

// Available methods: MOHECO (the paper's algorithm), its ablation without
// the memetic operator, and the fixed-budget Monte-Carlo baseline.
const (
	MethodMOHECO      = core.MethodMOHECO
	MethodOOOnly      = core.MethodOOOnly
	MethodFixedBudget = core.MethodFixedBudget
)

// Options configures an optimization run; Result reports its outcome.
type (
	Options   = core.Options
	Result    = core.Result
	GenRecord = core.GenRecord
)

// Backends returns the registered search-backend names accepted by
// Options.Backend: "memetic" (the paper's DE+NM loop, the default) and
// "lineasybo" (one-dimensional-subspace Bayesian optimization) ship
// built in. All backends share the estimation machinery — two-stage OO or
// fixed-budget Monte-Carlo, the simulation counter, cancellation and the
// fixed-seed determinism contract.
func Backends() []string { return core.Backends() }

// DefaultOptions returns the paper's parameter settings (population 50,
// F = CR = 0.8, n0 = 15, simAve = 35, 97% promotion threshold, stall limits
// 5/20) for the given method and stage-2 sample budget (paper: 500).
func DefaultOptions(m Method, maxSims int) Options {
	return core.DefaultOptions(m, maxSims)
}

// Optimize runs a yield optimization and returns the best design found,
// its reported yield, the total number of circuit simulations spent, and
// the per-generation history.
func Optimize(p Problem, opts Options) (*Result, error) {
	return core.Optimize(p, opts)
}

// EstimateYield computes an n-sample plain Monte-Carlo yield estimate of
// design x — the reference analysis the paper scores every method against
// (n = 50000 there) — using all available cores.
func EstimateYield(p Problem, x []float64, n int, seed uint64) (float64, error) {
	return EstimateYieldWorkers(p, x, n, seed, 0)
}

// EstimateYieldWorkers is EstimateYield with an explicit worker count
// (0 = GOMAXPROCS, 1 = sequential). The sample stream is chunked
// deterministically, so every worker count returns the identical estimate.
func EstimateYieldWorkers(p Problem, x []float64, n int, seed uint64, workers int) (float64, error) {
	y, _, err := yieldsim.ReferenceWorkers(p, x, n, seed, nil, workers)
	return y, err
}

// NewFoldedCascodeProblem returns the paper's example 1: a fully
// differential folded-cascode amplifier in a synthetic 0.35µm 3.3V CMOS
// technology with 80 process-variation variables.
func NewFoldedCascodeProblem() *circuits.FoldedCascode { return circuits.NewFoldedCascode() }

// NewTelescopicProblem returns the paper's example 2: a two-stage
// telescopic cascode amplifier in a synthetic 90nm 1.2V CMOS technology
// with 123 process-variation variables.
func NewTelescopicProblem() *circuits.Telescopic { return circuits.NewTelescopic() }

// NewCommonSourceProblem returns the small quickstart problem: a
// common-source stage with a current-source load (32 variation variables).
func NewCommonSourceProblem() *circuits.CommonSource { return circuits.NewCommonSource() }

// NewCommonSourceSpiceProblem returns the quickstart problem evaluated
// through the built-in MNA circuit simulator instead of the behavioural
// model: every Monte-Carlo sample builds a perturbed netlist and runs
// DC + AC analyses, the fully general (and far slower) path that mirrors
// the paper's HSPICE-in-the-loop flow.
func NewCommonSourceSpiceProblem() *circuits.CommonSourceSpice {
	return circuits.NewCommonSourceSpice()
}
