package moheco_test

import (
	"math"
	"testing"

	moheco "github.com/eda-go/moheco"
)

// The public facade must expose a working end-to-end flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	p := moheco.NewCommonSourceProblem()
	opts := moheco.DefaultOptions(moheco.MethodMOHECO, 150)
	opts.PopSize = 24
	opts.MaxGenerations = 40
	opts.Seed = 5
	res, err := moheco.Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("no feasible design")
	}
	y, err := moheco.EstimateYield(p, res.BestX, 10000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-res.BestYield) > 0.08 {
		t.Errorf("reported %.3f vs reference %.3f", res.BestYield, y)
	}
}

func TestProblemConstructors(t *testing.T) {
	cases := []struct {
		p      moheco.Problem
		dim    int
		varDim int
	}{
		{moheco.NewCommonSourceProblem(), 4, 32},
		{moheco.NewFoldedCascodeProblem(), 10, 80},
		{moheco.NewTelescopicProblem(), 12, 123},
	}
	for _, c := range cases {
		if c.p.Dim() != c.dim {
			t.Errorf("%s: Dim = %d, want %d", c.p.Name(), c.p.Dim(), c.dim)
		}
		if c.p.VarDim() != c.varDim {
			t.Errorf("%s: VarDim = %d, want %d", c.p.Name(), c.p.VarDim(), c.varDim)
		}
	}
}

func TestSpecAliases(t *testing.T) {
	s := moheco.Spec{Name: "A0", Sense: moheco.AtLeast, Bound: 70}
	if !s.Satisfied(71) || s.Satisfied(69) {
		t.Error("spec alias broken")
	}
}
