// Quickstart: optimize the yield of a common-source amplifier stage with
// MOHECO in a few seconds, then double-check the result against a large
// plain Monte-Carlo reference — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	moheco "github.com/eda-go/moheco"
)

func main() {
	// The built-in quickstart problem: a common-source stage with a
	// current-source load in the 0.35µm deck. Specs: A0 ≥ 34 dB,
	// GBW ≥ 20 MHz, power ≤ 0.5 mW, devices saturated.
	p := moheco.NewCommonSourceProblem()
	fmt.Printf("problem %q: %d design variables, %d process variables\n",
		p.Name(), p.Dim(), p.VarDim())
	for _, s := range p.Specs() {
		fmt.Println("  spec:", s)
	}

	// Paper parameters, 500-sample reporting accuracy.
	opts := moheco.DefaultOptions(moheco.MethodMOHECO, 500)
	opts.Seed = 2024
	res, err := moheco.Optimize(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatal("no feasible design found")
	}
	fmt.Printf("\noptimized in %d generations, %d circuit simulations (%s)\n",
		res.Generations, res.TotalSims, res.StopReason)
	fmt.Printf("reported yield: %.2f%%\n", 100*res.BestYield)
	fmt.Printf("design: Ib=%.3gA W1=%.3gm L1=%.3gm W2=%.3gm\n",
		res.BestX[0], res.BestX[1], res.BestX[2], res.BestX[3])

	// Reference analysis, as the paper scores every method.
	ref, err := moheco.EstimateYield(p, res.BestX, 50000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference yield (50k MC): %.2f%% — deviation %.2f%%\n",
		100*ref, 100*(res.BestYield-ref))
}
