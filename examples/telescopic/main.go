// Example 2 of the paper: yield optimization of a two-stage telescopic
// cascode amplifier in 90nm CMOS under "extremely severe performance
// constraints" (123 process-variation variables, 8 specifications including
// area and offset). Shows the per-generation trajectory of MOHECO on the
// hardest benchmark.
package main

import (
	"fmt"
	"log"
	"time"

	moheco "github.com/eda-go/moheco"
)

func main() {
	p := moheco.NewTelescopicProblem()
	fmt.Printf("example 2: %s\n", p.Name())
	fmt.Printf("  %d design variables, %d process variables (19 devices × 4 + 47 inter-die)\n",
		p.Dim(), p.VarDim())
	for _, s := range p.Specs() {
		fmt.Println("  spec:", s)
	}

	opts := moheco.DefaultOptions(moheco.MethodMOHECO, 500)
	opts.Seed = 3
	opts.MaxGenerations = 250
	start := time.Now()
	res, err := moheco.Optimize(p, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbest-member trajectory:")
	lastShown := -1.0
	for _, r := range res.History {
		if !r.BestFeasible {
			continue
		}
		if r.BestYield > lastShown+0.01 || r.Gen == res.Generations {
			fmt.Printf("  gen %3d: yield %.2f%% (cumulative sims %d)\n",
				r.Gen, 100*r.BestYield, r.CumSims)
			lastShown = r.BestYield
		}
	}
	fmt.Printf("\nstopped: %s after %d generations, %d simulations, %d NM refinements (%s)\n",
		res.StopReason, res.Generations, res.TotalSims, res.NMTriggers,
		time.Since(start).Round(time.Millisecond))
	if !res.Feasible {
		log.Fatal("no feasible design found — increase the generation budget")
	}
	ref, err := moheco.EstimateYield(p, res.BestX, 50000, 999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reported yield %.2f%%, reference %.2f%%\n", 100*res.BestYield, 100*ref)

	perf, err := p.Evaluate(res.BestX, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nominal performances of the final design:")
	for i, s := range p.Specs() {
		fmt.Printf("  %-10s %s %-10.4g got %.4g %s\n", s.Name, s.Sense, s.Bound, perf[i], s.Unit)
	}
}
