// OCBA demo: shows the computing-budget-allocation idea of the paper's
// first stage in isolation. Ten stochastic candidates with known true
// yields are ranked twice with the same total budget — once with uniform
// allocation, once with the OCBA sequencer — and the probability of
// correctly selecting the best candidate is compared over many trials.
package main

import (
	"fmt"
	"math"

	"github.com/eda-go/moheco/internal/ocba"
	"github.com/eda-go/moheco/internal/randx"
)

// bernoulliCand simulates a candidate whose yield estimate comes from
// Bernoulli sampling with a hidden true yield.
type bernoulliCand struct {
	p    float64
	rng  *randx.Stream
	n    int
	pass int
}

func (b *bernoulliCand) AddSamples(n int) error {
	for i := 0; i < n; i++ {
		if b.rng.Float64() < b.p {
			b.pass++
		}
		b.n++
	}
	return nil
}
func (b *bernoulliCand) Samples() int { return b.n }
func (b *bernoulliCand) Yield() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.pass) / float64(b.n)
}
func (b *bernoulliCand) Std() float64 {
	p := (float64(b.pass) + 1) / (float64(b.n) + 2)
	return math.Sqrt(p * (1 - p))
}

func main() {
	trueYields := []float64{0.93, 0.90, 0.85, 0.78, 0.70, 0.60, 0.45, 0.30, 0.20, 0.10}
	const budget = 350 // paper's simAve(35) × 10 candidates
	const trials = 2000
	root := randx.New(7)

	run := func(useOCBA bool) (correct int, spent float64) {
		for t := 0; t < trials; t++ {
			cands := make([]ocba.Candidate, len(trueYields))
			for i, p := range trueYields {
				cands[i] = &bernoulliCand{p: p, rng: root.Derive(uint64(t), uint64(i))}
			}
			if useOCBA {
				seq := &ocba.Sequencer{N0: 15, Delta: 10}
				used, _ := seq.Run(cands, budget)
				spent += float64(used)
			} else {
				// Uniform gets a slightly larger budget than OCBA's typical
				// spend so the comparison never favours OCBA through budget.
				per := 42
				for _, c := range cands {
					_ = c.AddSamples(per)
					spent += float64(per)
				}
			}
			best := 0
			for i := range cands {
				if cands[i].Yield() > cands[best].Yield() {
					best = i
				}
			}
			if best == 0 {
				correct++
			}
		}
		return
	}

	uniCorrect, uniSpent := run(false)
	ocbaCorrect, ocbaSpent := run(true)
	fmt.Printf("candidates (true yields): %v\n", trueYields)
	fmt.Printf("budget per ranking: %d samples, %d trials\n\n", budget, trials)
	fmt.Printf("%-20s P(correct selection) avg samples\n", "allocation")
	fmt.Printf("%-20s %19.3f %11.0f\n", "uniform", float64(uniCorrect)/trials, uniSpent/trials)
	fmt.Printf("%-20s %19.3f %11.0f\n", "OCBA (Chen 2000)", float64(ocbaCorrect)/trials, ocbaSpent/trials)
	fmt.Println("\nOCBA concentrates samples on the contenders, so at equal budget the")
	fmt.Println("probability of picking the true best candidate rises — the engine of")
	fmt.Println("the paper's first-stage yield estimation.")
}
