// Example 1 of the paper: yield optimization of a fully differential
// folded-cascode amplifier in 0.35µm CMOS (80 process-variation variables).
// Runs the three compared methods on the same problem and prints the
// accuracy-versus-cost comparison behind Tables 1–2.
package main

import (
	"fmt"
	"log"
	"time"

	moheco "github.com/eda-go/moheco"
)

func main() {
	p := moheco.NewFoldedCascodeProblem()
	fmt.Printf("example 1: %s\n", p.Name())
	fmt.Printf("  %d design variables, %d process variables (15 devices × 4 + 20 inter-die)\n",
		p.Dim(), p.VarDim())
	for _, s := range p.Specs() {
		fmt.Println("  spec:", s)
	}
	fmt.Println()

	methods := []struct {
		name string
		m    moheco.Method
	}{
		{"MOHECO (OO + memetic)", moheco.MethodMOHECO},
		{"OO+AS+LHS (no memetic)", moheco.MethodOOOnly},
		{"AS+LHS 500 sims/candidate", moheco.MethodFixedBudget},
	}
	for _, mm := range methods {
		opts := moheco.DefaultOptions(mm.m, 500)
		opts.Seed = 7
		start := time.Now()
		res, err := moheco.Optimize(p, opts)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := moheco.EstimateYield(p, res.BestX, 50000, 999)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s gens=%3d sims=%7d reported=%.2f%% reference=%.2f%% (%s)\n",
			mm.name, res.Generations, res.TotalSims,
			100*res.BestYield, 100*ref, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nSame reporting accuracy; the OO-based methods spend far fewer simulations.")
}
