// Simulator-in-the-loop: the same quickstart yield problem evaluated two
// ways — through the fast behavioural model and through the built-in MNA
// circuit simulator (a perturbed netlist + DC + AC per Monte-Carlo sample,
// the paper's HSPICE flow). Shows that the statistical machinery is
// agnostic to the evaluator and measures the cost gap that motivates
// budget allocation.
package main

import (
	"fmt"
	"log"
	"time"

	moheco "github.com/eda-go/moheco"
)

func main() {
	fast := moheco.NewCommonSourceProblem()
	slow := moheco.NewCommonSourceSpiceProblem()
	x := fast.ReferenceDesign()

	fmt.Println("evaluating the same design through both paths (nominal):")
	pf, err := fast.Evaluate(x, nil)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := slow.Evaluate(x, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s %14s %16s\n", "spec", "behavioural", "MNA simulator")
	for i, s := range fast.Specs() {
		fmt.Printf("  %-10s %14.5g %16.5g  (%s)\n", s.Name, pf[i], ps[i], s.Unit)
	}

	// Yield estimation through both paths; same sample budget.
	const n = 400
	t0 := time.Now()
	yFast, err := moheco.EstimateYield(fast, x, n, 7)
	if err != nil {
		log.Fatal(err)
	}
	dFast := time.Since(t0)
	t0 = time.Now()
	ySlow, err := moheco.EstimateYield(slow, x, n, 7)
	if err != nil {
		log.Fatal(err)
	}
	dSlow := time.Since(t0)
	fmt.Printf("\n%d-sample Monte-Carlo yield:\n", n)
	fmt.Printf("  behavioural:   %6.2f%% in %v\n", 100*yFast, dFast.Round(time.Millisecond))
	fmt.Printf("  MNA simulator: %6.2f%% in %v (%.0fx slower)\n",
		100*ySlow, dSlow.Round(time.Millisecond), float64(dSlow)/float64(dFast))
	fmt.Println("\nThe estimates agree within sampling error; the cost ratio is the")
	fmt.Println("reason the paper allocates its simulation budget so carefully.")
}
