// SPICE demo: exercises the built-in MNA circuit simulator — the substrate
// standing in for HSPICE in this reproduction — on the quickstart
// common-source stage: netlist construction, DC operating point, AC sweep
// and Bode post-processing, plus the round trip through the text netlist
// format.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/eda-go/moheco/internal/circuits"
	"github.com/eda-go/moheco/internal/measure"
	"github.com/eda-go/moheco/internal/netlist"
	"github.com/eda-go/moheco/internal/spice"
)

func main() {
	p := circuits.NewCommonSource()
	ckt, err := p.CommonSourceNetlist(p.ReferenceDesign())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("netlist (text form):")
	var b strings.Builder
	if err := netlist.Write(&b, ckt); err != nil {
		log.Fatal(err)
	}
	fmt.Println(b.String())

	// Round trip through the parser.
	reparsed, err := netlist.Parse(strings.NewReader(b.String()), ckt.Models)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parser round trip: %d devices preserved\n\n", len(reparsed.Devices))

	eng, err := spice.New(ckt, spice.Options{})
	if err != nil {
		log.Fatal(err)
	}
	op, err := eng.DCOperatingPoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DC operating point (%d Newton iterations):\n", op.Iterations)
	for _, n := range []string{"vdd", "bp", "in", "out"} {
		v, _ := op.VNode(ckt, n)
		fmt.Printf("  V(%-3s) = %.4f V\n", n, v)
	}
	for name, m := range op.MOS {
		fmt.Printf("  %-3s %-10s ID=%.4g A gm=%.4g S\n", name, m.Region, m.ID, m.Gm)
	}

	freqs := spice.LogSpace(100, 3e9, 10)
	ac, err := eng.AC(op, freqs)
	if err != nil {
		log.Fatal(err)
	}
	h, err := ac.VNode(ckt, "out")
	if err != nil {
		log.Fatal(err)
	}
	bode := measure.NewBode(freqs, h)
	fmt.Printf("\nAC analysis at the output:\n  DC gain %.2f dB\n", bode.DCGainDB())
	if fu, err := bode.UnityCrossing(); err == nil {
		pm, _ := bode.PhaseMargin()
		fmt.Printf("  unity-gain frequency %.3g Hz\n  phase margin %.1f deg\n", fu, pm)
	}

	// Compare with the behavioural evaluator used by the yield loops.
	perf, err := p.Evaluate(p.ReferenceDesign(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbehavioural model: A0 = %.2f dB, GBW = %.3g Hz\n", perf[0], perf[1])
	fmt.Println("(the two agree within the level-1 vs behavioural approximations)")
	os.Exit(0)
}
