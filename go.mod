module github.com/eda-go/moheco

go 1.22
