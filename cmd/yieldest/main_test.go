package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles the command under test into a temp dir and returns the
// binary path.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "yieldest")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Transient flags against a scenario without a transient stage must exit 2
// and list the tran-capable scenarios — not be half-applied or reported as a
// generic runtime failure.
func TestTranFlagsOnNonTranScenarioExit2(t *testing.T) {
	bin := buildCmd(t)
	for _, args := range [][]string{
		{"-problem", "foldedcascode", "-tranmode", "fixed"},
		{"-problem", "commonsource-spice", "-tstop", "2e-6"},
		{"-problem", "telescopic", "-tstep", "1e-9"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: err = %v (want exit error)\n%s", args, err, out)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%v: exit code %d, want 2\n%s", args, code, out)
		}
		s := string(out)
		if !strings.Contains(s, "has no transient window") {
			t.Errorf("%v: missing rejection message in output:\n%s", args, s)
		}
		for _, name := range []string{"commonsource-tran", "foldedcascode-tran"} {
			if !strings.Contains(s, name) {
				t.Errorf("%v: tran-capable scenario %q not listed in output:\n%s", args, name, s)
			}
		}
	}
}

// The same flags on a tran-capable scenario must be accepted (the estimate
// runs; keep it tiny).
func TestTranFlagsOnTranScenarioAccepted(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin,
		"-problem", "commonsource-tran", "-tranmode", "fixed", "-n", "8", "-workers", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("tran-capable scenario rejected: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "yield:") {
		t.Errorf("no yield line in output:\n%s", out)
	}
}
