// Command yieldest estimates the Monte-Carlo yield of a given design point
// on one of the built-in problems and prints the per-spec nominal
// performance alongside the statistical estimate.
//
// Usage:
//
//	yieldest -problem foldedcascode -n 50000 [-seed S] [-workers N] [-x "v1,v2,..."]
//
// Without -x, the problem's built-in reference design is analyzed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	moheco "github.com/eda-go/moheco"
	"github.com/eda-go/moheco/internal/circuits"
	"github.com/eda-go/moheco/internal/constraint"
)

type refProblem interface {
	moheco.Problem
	ReferenceDesign() []float64
}

func main() {
	var (
		probName = flag.String("problem", "foldedcascode", "foldedcascode | telescopic | commonsource")
		n        = flag.Int("n", 50000, "Monte-Carlo samples")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		xFlag    = flag.String("x", "", "comma-separated design vector (default: reference design)")
	)
	flag.Parse()

	var p refProblem
	switch *probName {
	case "foldedcascode":
		p = circuits.NewFoldedCascode()
	case "telescopic":
		p = circuits.NewTelescopic()
	case "commonsource":
		p = circuits.NewCommonSource()
	default:
		fatal(fmt.Errorf("unknown problem %q", *probName))
	}

	x := p.ReferenceDesign()
	if *xFlag != "" {
		parts := strings.Split(*xFlag, ",")
		if len(parts) != p.Dim() {
			fatal(fmt.Errorf("design needs %d values, got %d", p.Dim(), len(parts)))
		}
		x = make([]float64, len(parts))
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(err)
			}
			x[i] = v
		}
	}

	perf, err := p.Evaluate(x, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem: %s\nnominal performances:\n", p.Name())
	feasible := true
	for i, s := range p.Specs() {
		ok := s.Satisfied(perf[i])
		feasible = feasible && ok
		mark := "ok"
		if !ok {
			mark = "VIOLATED"
		}
		fmt.Printf("  %-10s %s %-12.5g got %-12.5g %-4s %s\n", s.Name, s.Sense, s.Bound, perf[i], s.Unit, mark)
	}
	if !feasible {
		fmt.Printf("total violation: %.4g\n", constraint.TotalViolation(p.Specs(), perf))
	}
	start := time.Now()
	y, err := moheco.EstimateYieldWorkers(p, x, *n, *seed, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("yield: %.3f%% (%d MC samples, %s)\n",
		100*y, *n, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yieldest:", err)
	os.Exit(1)
}
