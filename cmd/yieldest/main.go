// Command yieldest estimates the Monte-Carlo yield of a given design point
// on one of the registered problems and prints the per-spec nominal
// performance alongside the statistical estimate.
//
// Usage:
//
//	yieldest -problem foldedcascode [-n N] [-seed S] [-workers N] [-x "v1,v2,..."]
//
// Without -x, the problem's built-in reference design is analyzed; without
// -n, the problem's default reference sample count is used. Problems come
// from the scenario registry (-h lists them).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	moheco "github.com/eda-go/moheco"
	"github.com/eda-go/moheco/internal/constraint"
	"github.com/eda-go/moheco/internal/profiling"
	"github.com/eda-go/moheco/internal/scenario"
)

func main() {
	var (
		probName = flag.String("problem", "foldedcascode", "registered problem name (see -h)")
		n        = flag.Int("n", 0, "Monte-Carlo samples (0 = problem default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		xFlag    = flag.String("x", "", "comma-separated design vector (default: reference design)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: yieldest [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	sc, err := scenario.Get(*probName)
	if err != nil {
		fatal(err)
	}
	p := sc.New()
	if *n <= 0 {
		*n = sc.DefaultRefSamples
	}

	x, hasRef := scenario.ReferenceDesign(p)
	if *xFlag != "" {
		parts := strings.Split(*xFlag, ",")
		if len(parts) != p.Dim() {
			fatal(fmt.Errorf("design needs %d values, got %d", p.Dim(), len(parts)))
		}
		x = make([]float64, len(parts))
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(err)
			}
			x[i] = v
		}
	} else if !hasRef {
		fatal(fmt.Errorf("problem %q has no reference design; pass -x", p.Name()))
	}

	perf, err := p.Evaluate(x, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem: %s\nnominal performances:\n", p.Name())
	feasible := true
	for i, s := range p.Specs() {
		ok := s.Satisfied(perf[i])
		feasible = feasible && ok
		mark := "ok"
		if !ok {
			mark = "VIOLATED"
		}
		fmt.Printf("  %-10s %s %-12.5g got %-12.5g %-4s %s\n", s.Name, s.Sense, s.Bound, perf[i], s.Unit, mark)
	}
	if !feasible {
		fmt.Printf("total violation: %.4g\n", constraint.TotalViolation(p.Specs(), perf))
	}
	start := time.Now()
	y, err := moheco.EstimateYieldWorkers(p, x, *n, *seed, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("yield: %.3f%% (%d MC samples, %s)\n",
		100*y, *n, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yieldest:", err)
	os.Exit(1)
}
