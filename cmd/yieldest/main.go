// Command yieldest estimates the Monte-Carlo yield of a given design point
// on one of the registered problems and prints the per-spec nominal
// performance alongside the statistical estimate.
//
// Usage:
//
//	yieldest -problem foldedcascode [-n N] [-seed S] [-workers N] [-x "v1,v2,..."]
//	         [-sampler pmc|lhs|halton] [-tstop T] [-tstep T] [-tranmode adaptive|fixed]
//	         [-timeout DUR] [-server URL[,URL...]] [-lanes K]
//	         [-benchjson FILE] [-benchname NAME]
//
// Without -x, the problem's built-in reference design is analyzed; without
// -n, the problem's default reference sample count is used. Problems come
// from the scenario registry (-h lists them). The -tstop/-tstep/-tranmode
// flags override the transient window of a time-domain problem; on a
// problem without one they are a usage error — the command exits with code
// 2 and lists the tran-capable scenarios. With -server, the estimate is served by a mohecod
// daemon — results are bit-identical to the local path at the same
// (problem, x, n, seed, sampler, tran window), so the flag only changes
// where the simulations burn. -server accepts a comma-separated endpoint
// list ("http://a:8650,http://b:8650"); the client retries transient
// failures with backoff and fails over between endpoints, resubmitting if
// the endpoint holding the job dies (safe: the daemons' canonical-key
// caches dedupe identical requests). -timeout cancels the run (local or
// served) when it expires; the command then exits with code 2. -benchjson
// appends a samples/sec throughput line for the run to the given file in
// the CI bench snapshot schema (see internal/perfsnap), named by
// -benchname.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	_ "github.com/eda-go/moheco" // link the circuit registry
	"github.com/eda-go/moheco/internal/constraint"
	"github.com/eda-go/moheco/internal/perfsnap"
	"github.com/eda-go/moheco/internal/profiling"
	"github.com/eda-go/moheco/internal/sample"
	"github.com/eda-go/moheco/internal/scenario"
	"github.com/eda-go/moheco/internal/service"
	"github.com/eda-go/moheco/internal/yieldsim"
)

func main() {
	var (
		probName = flag.String("problem", "foldedcascode", "registered problem name (see -h)")
		n        = flag.Int("n", 0, "Monte-Carlo samples (0 = problem default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		xFlag    = flag.String("x", "", "comma-separated design vector (default: reference design)")
		sampler  = flag.String("sampler", "pmc", "sample plan: "+strings.Join(sample.Names(), " | "))
		tStop    = flag.Float64("tstop", 0, "transient stop time override (s; time-domain problems only)")
		tStep    = flag.Float64("tstep", 0, "transient initial/fixed step override (s)")
		tranMode = flag.String("tranmode", "", "transient integrator mode: adaptive | fixed (default: problem's)")
		timeout  = flag.Duration("timeout", 0, "cancel the estimate after this duration (exit code 2)")
		server   = flag.String("server", "", "mohecod daemon URL, or a comma-separated failover list; empty = run locally")
		lanes    = flag.Int("lanes", 0, "lockstep lane count of the sparse batch solver (0 = auto by pattern size; results are identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		benchJSON = flag.String("benchjson", "", "append a samples/sec throughput line for this run to the file (perfsnap schema)")
		benchName = flag.String("benchname", "ServedYield", "benchmark name for the -benchjson line")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: yieldest [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()
	if *lanes > 0 {
		// Engines read MOHECO_LANES at construction, which happens after
		// main starts; a pure wall-clock knob, like -workers.
		os.Setenv("MOHECO_LANES", strconv.Itoa(*lanes))
	}

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc, err := scenario.Get(*probName)
	if err != nil {
		fatal(err)
	}
	p := sc.New()
	if *n <= 0 {
		*n = sc.DefaultRefSamples
	}
	plan, err := sample.ByName(*sampler)
	if err != nil {
		fatal(err)
	}

	x, hasRef := scenario.ReferenceDesign(p)
	if *xFlag != "" {
		parts := strings.Split(*xFlag, ",")
		if len(parts) != p.Dim() {
			fatal(fmt.Errorf("design needs %d values, got %d", p.Dim(), len(parts)))
		}
		x = make([]float64, len(parts))
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(err)
			}
			x[i] = v
		}
	} else if !hasRef {
		fatal(fmt.Errorf("problem %q has no reference design; pass -x", p.Name()))
	}

	// Transient-window overrides: resolved and applied to the local problem
	// instance through the service's single resolution implementation, and
	// shipped with the request when the estimate is served (the daemon
	// resolves identically).
	var tranSpec *service.TranSpec
	if *tStop != 0 || *tStep != 0 || *tranMode != "" {
		tranSpec = &service.TranSpec{TStop: *tStop, Step: *tStep, Mode: *tranMode}
		if _, err := service.ResolveTran(p, *probName, tranSpec); err != nil {
			if errors.Is(err, service.ErrNoTranWindow) {
				// A usage error, not a runtime failure: point at the
				// scenarios the transient flags apply to and exit 2.
				fmt.Fprintf(os.Stderr, "yieldest: %v\ntran-capable scenarios: %s\n",
					err, strings.Join(scenario.TranCapableNames(), ", "))
				os.Exit(2)
			}
			fatal(err)
		}
	}

	perf, err := p.Evaluate(x, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem: %s\nnominal performances:\n", p.Name())
	feasible := true
	for i, s := range p.Specs() {
		ok := s.Satisfied(perf[i])
		feasible = feasible && ok
		mark := "ok"
		if !ok {
			mark = "VIOLATED"
		}
		fmt.Printf("  %-10s %s %-12.5g got %-12.5g %-4s %s\n", s.Name, s.Sense, s.Bound, perf[i], s.Unit, mark)
	}
	if !feasible {
		fmt.Printf("total violation: %.4g\n", constraint.TotalViolation(p.Specs(), perf))
	}

	start := time.Now()
	var y float64
	where := "local"
	if *server != "" {
		where = *server
		st, cerr := service.NewClient(*server).Yield(ctx, service.YieldRequest{
			Scenario: *probName,
			X:        x,
			N:        *n,
			Seed:     seed,
			Sampler:  plan.Name(),
			Tran:     tranSpec,
		})
		if cerr != nil {
			fatalCtx(ctx, cerr)
		}
		y = st.Yield.Yield
		if st.Cached {
			where += " (coalesced/cached)"
		}
	} else {
		y, _, err = yieldsim.ReferenceCtx(ctx, p, x, *n, *seed, yieldsim.RefOptions{
			Workers: *workers,
			Sampler: plan,
		})
		if err != nil {
			fatalCtx(ctx, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("yield: %.3f%% (%d MC samples, plan %s, %s, %s)\n",
		100*y, *n, plan.Name(), where, elapsed.Round(time.Millisecond))
	if *benchJSON != "" {
		cfg := perfsnap.RunConfig{Workers: *workers, Lanes: *lanes, Served: *server != ""}
		if err := perfsnap.AppendThroughput(*benchJSON, *benchName, int64(*n), elapsed, cfg); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yieldest:", err)
	os.Exit(1)
}

// fatalCtx reports the error and exits 2 when the run was cut short by the
// -timeout deadline, 1 otherwise.
func fatalCtx(ctx context.Context, err error) {
	fmt.Fprintln(os.Stderr, "yieldest:", err)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		os.Exit(2)
	}
	os.Exit(1)
}
