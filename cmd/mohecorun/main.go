// Command mohecorun runs a yield optimization on one of the registered
// problems and prints the result, including the final design, the reported
// yield and a high-accuracy reference check.
//
// Usage:
//
//	mohecorun [-problem NAME] [-method NAME] [-optimizer NAME] [-maxsims N]
//	          [-seed S] [-maxgens N] [-ref N] [-workers N] [-trace]
//	          [-tstop T] [-tstep T] [-tranmode adaptive|fixed]
//	          [-timeout DUR] [-server URL[,URL...]]
//
// Problems come from the scenario registry (-h lists them); methods are
// moheco, oo and fixed. -optimizer picks the search backend driving the
// estimation flow: memetic (the paper's DE+NM loop, default) or lineasybo
// (one-dimensional-subspace Bayesian optimization); -h lists the registered
// names. The -tstop/-tstep/-tranmode flags override the
// transient window of a time-domain problem (an error on problems without
// one). With -server, the optimization runs on a mohecod daemon
// (bit-identical result at the same request; -trace, -fixedsims and the
// tran flags are local-only). -server accepts a comma-separated endpoint
// list; the client retries transient failures with backoff and fails over
// between endpoints, resubmitting if the endpoint holding the job dies
// (the daemons' canonical-key caches dedupe identical requests). -timeout
// cancels the run — local or served — when it expires; the command then
// exits with code 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	moheco "github.com/eda-go/moheco"
	"github.com/eda-go/moheco/internal/scenario"
	"github.com/eda-go/moheco/internal/service"
	"github.com/eda-go/moheco/internal/yieldsim"
)

func main() {
	var (
		probName = flag.String("problem", "foldedcascode", "registered problem name (see -h)")
		method   = flag.String("method", "moheco", "moheco | oo | fixed")
		backend  = flag.String("optimizer", "", "search backend: "+strings.Join(moheco.Backends(), " | ")+" (default memetic)")
		maxSims  = flag.Int("maxsims", 0, "stage-2 / per-candidate sample budget (0 = problem default)")
		fixed    = flag.Int("fixedsims", 0, "fixed-budget per-candidate samples (fixed method; default maxsims)")
		seed     = flag.Uint64("seed", 1, "random seed")
		maxGens  = flag.Int("maxgens", 300, "generation cap")
		refN     = flag.Int("ref", -1, "reference MC samples for the final check (-1 = problem default, 0 to skip)")
		workers  = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		trace    = flag.Bool("trace", false, "print per-generation progress")
		tStop    = flag.Float64("tstop", 0, "transient stop time override (s; time-domain problems, local only)")
		tStep    = flag.Float64("tstep", 0, "transient initial/fixed step override (s)")
		tranMode = flag.String("tranmode", "", "transient integrator mode: adaptive | fixed (default: problem's)")
		timeout  = flag.Duration("timeout", 0, "cancel the optimization after this duration (exit code 2)")
		server   = flag.String("server", "", "mohecod daemon URL, or a comma-separated failover list; empty = run locally")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mohecorun [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()

	sc, err := scenario.Get(*probName)
	if err != nil {
		fatal(err)
	}
	p := sc.New()
	if *tStop != 0 || *tStep != 0 || *tranMode != "" {
		if *server != "" {
			fatal(fmt.Errorf("-tstop/-tstep/-tranmode are local-only; served optimizations run the scenario's built-in window"))
		}
		spec := &service.TranSpec{TStop: *tStop, Step: *tStep, Mode: *tranMode}
		if _, err := service.ResolveTran(p, *probName, spec); err != nil {
			fatal(err)
		}
	}
	if *maxSims <= 0 {
		*maxSims = sc.DefaultMaxSims
	}
	if *refN < 0 {
		*refN = sc.DefaultRefSamples
	}
	var m moheco.Method
	switch *method {
	case "moheco":
		m = moheco.MethodMOHECO
	case "oo":
		m = moheco.MethodOOOnly
	case "fixed":
		m = moheco.MethodFixedBudget
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := moheco.DefaultOptions(m, *maxSims)
	opts.Backend = *backend
	opts.Seed = *seed
	opts.MaxGenerations = *maxGens
	opts.Workers = *workers
	opts.Ctx = ctx
	if *fixed > 0 {
		opts.FixedSims = *fixed
	}

	shownBackend := *backend
	if shownBackend == "" {
		shownBackend = "memetic"
	}
	fmt.Printf("problem : %s (%d design variables, %d process variables)\n",
		p.Name(), p.Dim(), p.VarDim())
	fmt.Printf("method  : %s (stage-2 budget %d, %s search)\n", m, *maxSims, shownBackend)
	start := time.Now()
	var res *moheco.Result
	if *server != "" {
		st, cerr := service.NewClient(*server).Optimize(ctx, service.OptimizeRequest{
			Scenario:  *probName,
			Method:    *method,
			Optimizer: *backend,
			MaxSims:   *maxSims,
			MaxGens:   *maxGens,
			Seed:      seed,
		})
		if cerr != nil {
			fatalCtx(ctx, cerr)
		}
		o := st.Optimize
		res = &moheco.Result{
			Problem:     p.Name(),
			Method:      m,
			Backend:     o.Optimizer,
			BestX:       o.BestX,
			BestYield:   o.BestYield,
			BestSamples: o.BestSamples,
			Feasible:    o.Feasible,
			TotalSims:   o.TotalSims,
			Generations: o.Generations,
			StopReason:  o.StopReason,
		}
		if st.Cached {
			res.StopReason += " (coalesced/cached result)"
		}
	} else {
		var err error
		res, err = moheco.Optimize(p, opts)
		if err != nil {
			fatalCtx(ctx, err)
		}
	}
	if *trace {
		for _, r := range res.History {
			fmt.Printf("  gen %3d: feasible=%v yield=%.4f violation=%.4g sims=%d\n",
				r.Gen, r.BestFeasible, r.BestYield, r.BestViolation, r.CumSims)
		}
	}
	fmt.Printf("stopped : %s after %d generations, %s\n",
		res.StopReason, res.Generations, time.Since(start).Round(time.Millisecond))
	fmt.Printf("sims    : %d circuit simulations\n", res.TotalSims)
	if !res.Feasible {
		fmt.Println("result  : no feasible design found")
		os.Exit(2)
	}
	fmt.Printf("yield   : %.2f%% (reported, %d samples)\n", 100*res.BestYield, res.BestSamples)
	fmt.Print("design  :")
	for _, v := range res.BestX {
		fmt.Printf(" %.5g", v)
	}
	fmt.Println()
	perf, err := p.Evaluate(res.BestX, nil)
	if err == nil {
		fmt.Println("nominal performances:")
		for i, s := range p.Specs() {
			fmt.Printf("  %-10s %s %-12.5g got %.5g %s\n", s.Name, s.Sense, s.Bound, perf[i], s.Unit)
		}
	}
	if *refN > 0 {
		// The reference check honours -timeout and, under -server, runs
		// on the daemon too (hitting its result cache), so "where the
		// simulations burn" stays the flag's only effect.
		var ref float64
		if *server != "" {
			st, cerr := service.NewClient(*server).Yield(ctx, service.YieldRequest{
				Scenario: *probName,
				X:        res.BestX,
				N:        *refN,
				Seed:     service.Seed(*seed + 777),
			})
			if cerr != nil {
				fatalCtx(ctx, cerr)
			}
			ref = st.Yield.Yield
		} else {
			var rerr error
			ref, _, rerr = yieldsim.ReferenceCtx(ctx, p, res.BestX, *refN, *seed+777,
				yieldsim.RefOptions{Workers: *workers})
			if rerr != nil {
				fatalCtx(ctx, rerr)
			}
		}
		fmt.Printf("reference yield (%d MC samples): %.2f%% (deviation %.2f%%)\n",
			*refN, 100*ref, 100*(res.BestYield-ref))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mohecorun:", err)
	os.Exit(1)
}

// fatalCtx reports the error and exits 2 when the run was cut short by the
// -timeout deadline, 1 otherwise.
func fatalCtx(ctx context.Context, err error) {
	fmt.Fprintln(os.Stderr, "mohecorun:", err)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		os.Exit(2)
	}
	os.Exit(1)
}
