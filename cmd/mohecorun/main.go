// Command mohecorun runs a yield optimization on one of the registered
// problems and prints the result, including the final design, the reported
// yield and a high-accuracy reference check.
//
// Usage:
//
//	mohecorun [-problem NAME] [-method NAME] [-maxsims N] [-seed S]
//	          [-maxgens N] [-ref N] [-workers N] [-trace]
//
// Problems come from the scenario registry (-h lists them); methods are
// moheco, oo and fixed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	moheco "github.com/eda-go/moheco"
	"github.com/eda-go/moheco/internal/scenario"
)

func main() {
	var (
		probName = flag.String("problem", "foldedcascode", "registered problem name (see -h)")
		method   = flag.String("method", "moheco", "moheco | oo | fixed")
		maxSims  = flag.Int("maxsims", 0, "stage-2 / per-candidate sample budget (0 = problem default)")
		fixed    = flag.Int("fixedsims", 0, "fixed-budget per-candidate samples (fixed method; default maxsims)")
		seed     = flag.Uint64("seed", 1, "random seed")
		maxGens  = flag.Int("maxgens", 300, "generation cap")
		refN     = flag.Int("ref", -1, "reference MC samples for the final check (-1 = problem default, 0 to skip)")
		workers  = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		trace    = flag.Bool("trace", false, "print per-generation progress")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mohecorun [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()

	sc, err := scenario.Get(*probName)
	if err != nil {
		fatal(err)
	}
	p := sc.New()
	if *maxSims <= 0 {
		*maxSims = sc.DefaultMaxSims
	}
	if *refN < 0 {
		*refN = sc.DefaultRefSamples
	}
	var m moheco.Method
	switch *method {
	case "moheco":
		m = moheco.MethodMOHECO
	case "oo":
		m = moheco.MethodOOOnly
	case "fixed":
		m = moheco.MethodFixedBudget
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	opts := moheco.DefaultOptions(m, *maxSims)
	opts.Seed = *seed
	opts.MaxGenerations = *maxGens
	opts.Workers = *workers
	if *fixed > 0 {
		opts.FixedSims = *fixed
	}

	fmt.Printf("problem : %s (%d design variables, %d process variables)\n",
		p.Name(), p.Dim(), p.VarDim())
	fmt.Printf("method  : %s (stage-2 budget %d)\n", m, *maxSims)
	start := time.Now()
	res, err := moheco.Optimize(p, opts)
	if err != nil {
		fatal(err)
	}
	if *trace {
		for _, r := range res.History {
			fmt.Printf("  gen %3d: feasible=%v yield=%.4f violation=%.4g sims=%d\n",
				r.Gen, r.BestFeasible, r.BestYield, r.BestViolation, r.CumSims)
		}
	}
	fmt.Printf("stopped : %s after %d generations, %s\n",
		res.StopReason, res.Generations, time.Since(start).Round(time.Millisecond))
	fmt.Printf("sims    : %d circuit simulations\n", res.TotalSims)
	if !res.Feasible {
		fmt.Println("result  : no feasible design found")
		os.Exit(2)
	}
	fmt.Printf("yield   : %.2f%% (reported, %d samples)\n", 100*res.BestYield, res.BestSamples)
	fmt.Print("design  :")
	for _, v := range res.BestX {
		fmt.Printf(" %.5g", v)
	}
	fmt.Println()
	perf, err := p.Evaluate(res.BestX, nil)
	if err == nil {
		fmt.Println("nominal performances:")
		for i, s := range p.Specs() {
			fmt.Printf("  %-10s %s %-12.5g got %.5g %s\n", s.Name, s.Sense, s.Bound, perf[i], s.Unit)
		}
	}
	if *refN > 0 {
		ref, err := moheco.EstimateYieldWorkers(p, res.BestX, *refN, *seed+777, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reference yield (%d MC samples): %.2f%% (deviation %.2f%%)\n",
			*refN, 100*ref, 100*(res.BestYield-ref))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mohecorun:", err)
	os.Exit(1)
}
