// Command mohecod is the yield-service daemon: a long-lived HTTP server
// that runs yield estimates and full optimizations from the scenario
// registry on a bounded job pool, dedupes identical and in-flight requests
// through a canonical-key result cache, and streams job progress over SSE.
//
// Usage:
//
//	mohecod [-addr :8650] [-workers N] [-jobs N] [-cache N] [-queue N] [-quiet]
//	        [-loglevel debug|info|warn] [-debug-addr ADDR]
//	        [-coordinator] [-join URL[,URL...]] [-node NAME] [-advertise URL]
//	        [-lease DUR] [-heartbeat DUR] [-shard N] [-no-self-work]
//	        [-drain DUR]
//
// Fleet mode: `-coordinator` makes the daemon split yield jobs into
// deterministic chunk-range shards and serve them to pull-based workers on
// /v1/shards; `-join` makes it a worker of the coordinator at URL (while
// still answering its own API locally). A worker that also passes
// `-advertise` with its own reachable URL receives replicated fleet state
// and stands in the hand-off election should the coordinator die — the
// surviving node with the lowest name promotes itself and resumes
// unfinished jobs. Sharded results are bit-identical to single-node runs,
// hand-off or not — see DESIGN.md, "Distributed fleet" and "Failure
// model".
//
// Endpoints (see internal/service):
//
//	POST   /v1/yield            submit a yield-estimate job (?wait blocks)
//	POST   /v1/optimize         submit an optimization job
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status + result (?wait=DUR long-polls)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/jobs/{id}/trace  the job's span record (queue → shards → done)
//	GET    /v1/scenarios        the scenario registry
//	GET    /v1/fleet/status     fleet topology + per-peer throughput
//	GET    /healthz             liveness + counters
//	GET    /metrics             Prometheus scrape (?fleet=1 merges peers on a coordinator)
//	GET    /debug/vars          the same metrics as flat JSON
//
// -debug-addr additionally serves net/http/pprof (plus /metrics and
// /debug/vars) on a separate listener, so CPU/heap profiles of a live
// daemon never travel over — or open up — the public API port.
//
// Served results are bit-identical to the local CLIs at the same request:
// `yieldest -server` and `mohecorun -server` run against a shared daemon
// with no change in output. SIGINT/SIGTERM shut the daemon down cleanly
// (exit code 0): a fleet node first drains — stops leasing new shards,
// finishes and reports the shards it holds, deregisters from its
// coordinator so the peer table drops it immediately — then cancels its
// own jobs and exits. `-drain` bounds the drain wait.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "github.com/eda-go/moheco" // link the circuit registry
	"github.com/eda-go/moheco/internal/obs"
	"github.com/eda-go/moheco/internal/profiling"
	"github.com/eda-go/moheco/internal/scenario"
	"github.com/eda-go/moheco/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8650", "HTTP listen address")
		workers = flag.Int("workers", 0, "simulation goroutines per running job (0 = GOMAXPROCS; results are identical)")
		jobs    = flag.Int("jobs", 0, "concurrently running jobs (0 = 2)")
		cache   = flag.Int("cache", 0, "completed jobs retained for result reuse (0 = 256)")
		queue   = flag.Int("queue", 0, "pending-job queue bound (0 = 256)")
		quiet   = flag.Bool("quiet", false, "suppress per-job log lines")
		level   = flag.String("loglevel", "info", "log verbosity: debug (per-shard chatter) | info | warn")
		debug   = flag.String("debug-addr", "", "serve net/http/pprof + /metrics on this extra listener (empty = off)")

		coordinator = flag.Bool("coordinator", false, "schedule yield jobs as fleet shards served on /v1/shards")
		join        = flag.String("join", "", "coordinator URL(s, comma-separated failover list) to join as a worker")
		node        = flag.String("node", "", "this node's fleet name (default <role>-<pid>)")
		advertise   = flag.String("advertise", "", "URL peers reach this node at; makes a worker electable for coordinator hand-off")
		lease       = flag.Duration("lease", 0, "shard lease before re-dispatch to a surviving node (0 = 15s)")
		heartbeat   = flag.Duration("heartbeat", 0, "worker heartbeat period (0 = 2s)")
		shard       = flag.Int("shard", 0, "target shard size in samples, rounded up to whole chunks (0 = 8192)")
		noSelfWork  = flag.Bool("no-self-work", false, "coordinator only dispatches, never executes shards itself")
		drain       = flag.Duration("drain", 30*time.Second, "max wait for in-flight shards to finish on SIGTERM")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mohecod [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()

	if *coordinator && *join != "" {
		fmt.Fprintln(os.Stderr, "mohecod: -coordinator and -join are mutually exclusive (a coordinator is already a node of its own fleet)")
		os.Exit(2)
	}

	logLevel, err := obs.ParseLevel(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mohecod:", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "mohecod: ", log.LstdFlags)
	cfg := service.Config{
		Workers:   *workers,
		Jobs:      *jobs,
		QueueSize: *queue,
		CacheSize: *cache,
		LogLevel:  logLevel,
		Fleet: service.FleetConfig{
			Coordinator:  *coordinator,
			Join:         *join,
			Node:         *node,
			AdvertiseURL: *advertise,
			Lease:        *lease,
			Heartbeat:    *heartbeat,
			ShardSamples: *shard,
			NoSelfWork:   *noSelfWork,
		},
	}
	if !*quiet {
		cfg.Log = logger
	}
	svc := service.New(cfg)

	var debugSrv *http.Server
	if *debug != "" {
		// The service instruments itself into obs.Default(), so the debug
		// listener's /metrics is the same registry the API port serves.
		debugSrv, err = profiling.Serve(*debug, obs.Default())
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("debug listener (pprof, metrics) on %s", *debug)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fleet := svc.Fleet()
		logger.Printf("serving %d scenarios on %s (%s %q)", len(scenario.Names()), *addr, fleet.Role, fleet.Node)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any shutdown request.
		logger.Fatal(err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	// Drain the fleet side first: stop leasing new shards, let the shards
	// this node holds finish and report their counts (abandoning them would
	// only cost the fleet a lease-expiry wait, but finishing is free work),
	// and deregister from the coordinator so a clean exit does not read as
	// a crash. Single-node servers drain instantly.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	if err := svc.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	}
	cancelDrain()
	// Then close the service: it cancels every live job, which unblocks
	// ?wait long-polls and ends SSE streams, so the HTTP drain below does
	// not sit on open streams until its deadline.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	logger.Printf("clean shutdown (%d simulations served)", svc.Sims())
}
