package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "netlistsim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Transient flags against a -problem scenario without a transient stage
// must exit 2 and list the tran-capable scenarios. The flags carry non-zero
// defaults, so the command must detect explicit use (flag.Visit), not
// non-default values.
func TestTranFlagsOnNonTranScenarioExit2(t *testing.T) {
	bin := buildCmd(t)
	for _, args := range [][]string{
		{"-problem", "commonsource", "-tran", "out"},
		{"-problem", "foldedcascode", "-tstop", "1e-6"}, // explicit, equals the default
		{"-problem", "foldedcascode-spice", "-tranmode", "be"},
		{"-problem", "commonsource", "-tstep", "1e-9"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: err = %v (want exit error)\n%s", args, err, out)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%v: exit code %d, want 2\n%s", args, code, out)
		}
		s := string(out)
		if !strings.Contains(s, "no transient stage") {
			t.Errorf("%v: missing rejection message in output:\n%s", args, s)
		}
		for _, name := range []string{"commonsource-tran", "foldedcascode-tran"} {
			if !strings.Contains(s, name) {
				t.Errorf("%v: tran-capable scenario %q not listed in output:\n%s", args, name, s)
			}
		}
	}
}

// The same flags on a tran-capable scenario still run the transient stage,
// and non-tran analyses on non-tran scenarios are untouched.
func TestTranFlagsOnTranScenarioAccepted(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin,
		"-problem", "commonsource-tran", "-tran", "out", "-tranmode", "fixed", "-tstop", "1e-6").CombinedOutput()
	if err != nil {
		t.Fatalf("tran-capable scenario rejected: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "transient response") {
		t.Errorf("no transient output:\n%s", out)
	}

	out, err = exec.Command(bin, "-problem", "commonsource", "-ac", "out").CombinedOutput()
	if err != nil {
		t.Fatalf("AC-only run on non-tran scenario failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "AC response") {
		t.Errorf("no AC output:\n%s", out)
	}
}
