// Command netlistsim runs the built-in MNA circuit simulator: DC operating
// point and, optionally, an AC sweep of one node — on a SPICE-like netlist
// file, or on the testbench netlist of a registered problem.
//
// Usage:
//
//	netlistsim [-ac node] [-fstart F] [-fstop F] [-ppd N]
//	           [-tran node] [-tstop T] [-tstep T] [-tranmode adaptive|fixed|be] file.sp
//	netlistsim -problem NAME [analysis flags]
//
// The netlist format supports R, C, V, I, E, G and M cards plus .model
// lines; see internal/netlist. With -problem, the scenario registry builds
// the named problem's transistor-level testbench at its reference design
// (-h lists the registered problems). With -ac, the magnitude/phase
// response of the named node is printed together with DC gain, unity-gain
// frequency and phase margin. With -tran, the node's step response is
// integrated — by default through the LTE-controlled adaptive trapezoidal
// integrator (-tstep is its initial step; "fixed" pins a uniform
// trapezoidal grid, "be" the seed's fixed backward-Euler one) — and
// reduced to slew rate, delay, 1% settling time and overshoot. Transient
// flags against a -problem scenario without a transient stage are a usage
// error: the command exits with code 2 and lists the tran-capable
// scenarios.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	_ "github.com/eda-go/moheco/internal/circuits" // register the built-in scenarios
	"github.com/eda-go/moheco/internal/measure"
	"github.com/eda-go/moheco/internal/netlist"
	"github.com/eda-go/moheco/internal/scenario"
	"github.com/eda-go/moheco/internal/spice"
)

func main() {
	var (
		probName = flag.String("problem", "", "simulate a registered problem's testbench instead of a file (see -h)")
		acNode   = flag.String("ac", "", "node for AC transfer analysis")
		fStart   = flag.Float64("fstart", 10, "AC sweep start frequency (Hz)")
		fStop    = flag.Float64("fstop", 1e9, "AC sweep stop frequency (Hz)")
		ppd      = flag.Int("ppd", 10, "AC sweep points per decade")
		trNode   = flag.String("tran", "", "node for transient analysis (PULSE sources drive it)")
		tStop    = flag.Float64("tstop", 1e-6, "transient stop time (s)")
		tStep    = flag.Float64("tstep", 1e-9, "transient step (s; initial step in adaptive mode)")
		trMode   = flag.String("tranmode", "adaptive", "transient integrator: adaptive (LTE-controlled trap), fixed (uniform trap) or be (uniform backward Euler)")
		solver   = flag.String("solver", "auto", "linear solver backend: auto, dense or sparse")
		lanes    = flag.Int("lanes", 0, "lockstep lane count of the sparse batch solver (0 = auto by pattern size; results are identical)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: netlistsim [flags] file.sp | netlistsim -problem NAME [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()
	if *lanes > 0 {
		// Engines read MOHECO_LANES at construction, which happens after
		// main starts; a pure wall-clock knob.
		os.Setenv("MOHECO_LANES", strconv.Itoa(*lanes))
	}

	var (
		ckt     *netlist.Circuit
		nodeset map[string]float64
	)
	switch {
	case *probName != "":
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-problem and a netlist file are mutually exclusive"))
		}
		sc, err := scenario.Get(*probName)
		if err != nil {
			fatal(err)
		}
		if sc.Netlist == nil {
			fatal(fmt.Errorf("problem %q has no testbench netlist", sc.Name))
		}
		p := sc.New()
		// The transient flags only make sense against a scenario with a
		// transient stage (its testbench arms the step stimulus); on any
		// other scenario they used to be accepted and silently ignored
		// unless -tran was also given (and then integrated a stimulus-free
		// netlist). The flags carry non-zero defaults, so explicit use is
		// detected through flag.Visit.
		if set := explicitTranFlags(); len(set) > 0 && !scenario.TranCapable(p) {
			fmt.Fprintf(os.Stderr, "netlistsim: %s target scenario %q, which has no transient stage\ntran-capable scenarios: %s\n",
				strings.Join(set, "/"), sc.Name, strings.Join(scenario.TranCapableNames(), ", "))
			os.Exit(2)
		}
		x, ok := scenario.ReferenceDesign(p)
		if !ok {
			fatal(fmt.Errorf("problem %q has no reference design", sc.Name))
		}
		ckt, nodeset, err = sc.Netlist(x)
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ckt, err = netlist.Parse(f, nil)
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(1)
	}
	kind, err := spice.ParseSolver(*solver)
	if err != nil {
		fatal(err)
	}
	eng, err := spice.New(ckt, spice.Options{Nodeset: nodeset, Solver: kind})
	if err != nil {
		fatal(err)
	}
	backend := "dense"
	if eng.Sparse() {
		backend = "sparse"
	}
	op, err := eng.DCOperatingPoint()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("* %s\nMNA system: %d unknowns, %s solver\nDC operating point (%d Newton iterations):\n",
		ckt.Title, eng.Size(), backend, op.Iterations)
	for i := 1; i < ckt.NumNodes(); i++ {
		fmt.Printf("  V(%s) = %.6g V\n", ckt.NodeName(i), op.V[i])
	}
	if len(op.MOS) > 0 {
		names := make([]string, 0, len(op.MOS))
		for n := range op.MOS {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("devices:")
		for _, n := range names {
			m := op.MOS[n]
			fmt.Printf("  %-8s %-10s ID=%.4g A  gm=%.4g S  gds=%.4g S  vdsat=%.3f V\n",
				n, m.Region, m.ID, m.Gm, m.Gds, m.VDsat)
		}
	}
	if *trNode != "" {
		var o spice.TranOptions
		switch *trMode {
		case "adaptive":
			o = spice.TranOptions{TStop: *tStop, Step: *tStep, Adaptive: true}
		case "fixed":
			o = spice.TranOptions{TStop: *tStop, Step: *tStep, Method: spice.Trap}
		case "be":
			o = spice.TranOptions{TStop: *tStop, Step: *tStep, Method: spice.BackwardEuler}
		default:
			fatal(fmt.Errorf("unknown -tranmode %q (adaptive | fixed | be)", *trMode))
		}
		tr, err := eng.TransientOpts(op, o)
		if err != nil {
			fatal(err)
		}
		wave, err := tr.VNode(ckt, *trNode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("transient response at node %q (%s, %d points, %d rejected steps):\n",
			*trNode, *trMode, len(tr.Times), tr.Rejected)
		stride := len(tr.Times) / 40
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(tr.Times); i += stride {
			fmt.Printf("  t=%-12.4g v=%.6g\n", tr.Times[i], wave[i])
		}
		// Time-domain measures against the first pulse edge, V or I driven
		// (t0 = 0 when no source carries a pulse).
		t0 := 0.0
		for _, d := range ckt.Devices {
			if p := netlist.DevicePulse(d); p != nil {
				t0 = p.Delay
				break
			}
		}
		if st, err := measure.NewStep(tr.Times, wave, t0); err == nil {
			if sr, err := st.SlewRate(); err == nil {
				fmt.Printf("slew rate: %.4g V/s\n", sr)
			}
			if d, err := st.Delay(); err == nil {
				fmt.Printf("delay (50%%): %.4g s\n", d)
			}
			if ts, err := st.SettlingTime(0.01); err == nil {
				fmt.Printf("1%% settling: %.4g s\n", ts)
			} else {
				fmt.Println("1% settling: did not settle in window")
			}
			fmt.Printf("overshoot: %.2f%%\n", 100*st.Overshoot())
		}
	}
	if *acNode == "" {
		return
	}
	freqs := spice.LogSpace(*fStart, *fStop, *ppd)
	ac, err := eng.AC(op, freqs)
	if err != nil {
		fatal(err)
	}
	h, err := ac.VNode(ckt, *acNode)
	if err != nil {
		fatal(err)
	}
	bode := measure.NewBode(freqs, h)
	fmt.Printf("AC response at node %q:\n", *acNode)
	fmt.Printf("  %-14s %-10s %s\n", "freq (Hz)", "mag (dB)", "phase (deg)")
	for i, f := range freqs {
		fmt.Printf("  %-14.6g %-10.3f %.2f\n", f, bode.MagDB[i], bode.Phase[i])
	}
	fmt.Printf("DC gain: %.2f dB\n", bode.DCGainDB())
	if fu, err := bode.UnityCrossing(); err == nil {
		pm, _ := bode.PhaseMargin()
		fmt.Printf("unity-gain frequency: %.4g Hz\nphase margin: %.1f deg\n", fu, pm)
	} else {
		fmt.Println("no unity-gain crossing in the swept range")
	}
}

// explicitTranFlags returns the transient-analysis flags the user passed on
// the command line (the flags keep non-zero defaults, so presence — not
// value — is what distinguishes explicit use).
func explicitTranFlags() []string {
	var set []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "tran", "tstop", "tstep", "tranmode":
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlistsim:", err)
	os.Exit(1)
}
