// Command paperbench regenerates the paper's experimental results: Tables
// 1–4, Fig. 3, Fig. 6 and the §3.4 response-surface comparison.
//
// Usage:
//
//	paperbench [-full] [-quick] [-runs N] [-ref N] [-seed S] [-workers N]
//	           [-only LIST] [-v]
//
// By default it runs the full paper-scale configuration (10 runs per
// method, 50,000-sample references). -quick switches to the reduced
// configuration used by the benchmarks. -only selects a comma-separated
// subset of {table12, table34, fig3, fig6, rsb}. -racejson runs the
// equal-budget optimizer race instead (backends × scenarios × repeat
// seeds under one simulation cap) and writes the BENCH_optimizers.json
// artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/eda-go/moheco/internal/exp"
	"github.com/eda-go/moheco/internal/perfsnap"
	"github.com/eda-go/moheco/internal/profiling"
	"github.com/eda-go/moheco/internal/scenario"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced configuration (3 runs, 20k references)")
		runs    = flag.Int("runs", 0, "override the number of runs per method")
		refN    = flag.Int("ref", 0, "override the reference sample count")
		seed    = flag.Uint64("seed", 0, "override the experiment seed")
		work    = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		only    = flag.String("only", "", "comma-separated subset: table12,table34,fig3,fig6,rsb,pswcd,ablation")
		verb    = flag.Bool("v", false, "print per-run progress")
		csvDir  = flag.String("csv", "", "also write per-run CSV files into this directory")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJS = flag.String("benchjson", "", "run the spice-path benchmark set and write a BENCH_eval.json perf snapshot to this file (CI artifact schema), then exit")
		raceJS  = flag.String("racejson", "", "run the equal-budget optimizer race and write BENCH_optimizers.json to this file, then exit")
		raceBgt = flag.Int64("racebudget", 2000, "per-run simulation cap for the optimizer race")
		raceBk  = flag.String("racebackends", "", "comma-separated backends to race (empty = all registered)")
		raceSc  = flag.String("racescenarios", "", "comma-separated scenarios to race (empty = all registered)")
		raceGen = flag.Int("racegens", 0, "generation/round cap per race run (0 = optimizer default)")
		raceMS  = flag.Int("racemaxsims", 0, "stage-2 per-candidate budget in the race (0 = scenario default); smaller values tighten budget adherence")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: paperbench [flags]\n\n")
		flag.PrintDefaults()
		// The experiments resolve their circuits through the scenario
		// registry; list it so the mapping from tables to problems is
		// discoverable.
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenario.Usage())
	}
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *benchJS != "" {
		// Local perf snapshot: the same benchmark cases the CI bench job
		// runs, written in the same JSON schema, so the bench trajectory is
		// populated from dev machines too.
		f, err := os.Create(*benchJS)
		if err != nil {
			fatal(err)
		}
		if err := perfsnap.Write(io.MultiWriter(f, os.Stdout)); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		stopProfiles()
		return
	}

	if *raceJS != "" {
		// Equal-budget optimizer race: every backend runs the same scenarios
		// from the same repeat seeds under the same simulation cap, and the
		// comparison is yield at budget (exp.RunRace). The JSON artifact is
		// the BENCH_optimizers.json snapshot CI uploads next to the others.
		rcfg := exp.RaceConfig{
			SimBudget: *raceBgt,
			Repeats:   *runs,
			MaxSims:   *raceMS,
			MaxGens:   *raceGen,
			Seed:      *seed,
			Workers:   *work,
		}
		if rcfg.Repeats <= 0 {
			rcfg.Repeats = 3
		}
		if rcfg.Seed == 0 {
			rcfg.Seed = 1
		}
		if *raceBk != "" {
			rcfg.Backends = splitList(*raceBk)
		}
		if *raceSc != "" {
			rcfg.Scenarios = splitList(*raceSc)
		}
		if *verb {
			rcfg.Progress = os.Stderr
		}
		res, err := exp.RunRace(rcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		res.Render(os.Stdout)
		f, err := os.Create(*raceJS)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		writeCSV(*csvDir, "race.csv", res.WriteCSV)
		stopProfiles()
		return
	}

	cfg := exp.Full()
	if *quick {
		cfg = exp.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *refN > 0 {
		cfg.RefSamples = *refN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *work
	if *verb {
		cfg.Progress = os.Stderr
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	start := time.Now()
	var table12 *exp.TableResult
	if sel("table12") || sel("fig6") {
		t, err := exp.Table1and2(cfg)
		if err != nil {
			fatal(err)
		}
		table12 = t
	}
	if sel("table12") {
		fmt.Println()
		table12.RenderDeviation(os.Stdout)
		fmt.Println()
		table12.RenderSims(os.Stdout)
		writeCSV(*csvDir, "table12.csv", table12.WriteCSV)
	}
	if sel("table34") {
		t, err := exp.Table3and4(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		t.RenderDeviation(os.Stdout)
		fmt.Println()
		t.RenderSims(os.Stdout)
		writeCSV(*csvDir, "table34.csv", t.WriteCSV)
	}
	if sel("fig3") {
		r, err := exp.RunFig3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		r.Render(os.Stdout)
		writeCSV(*csvDir, "fig3.csv", r.WriteCSV)
	}
	if sel("fig6") && table12 != nil {
		fmt.Println()
		exp.RenderFig6(table12, os.Stdout)
	}
	if sel("rsb") {
		r, err := exp.RunRSB(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		exp.RenderRSB(r, os.Stdout)
	}
	if sel("pswcd") {
		r, err := exp.RunPSWCD(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		r.Render(os.Stdout)
	}
	if sel("ablation") {
		r, err := exp.RunAblation(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		r.Render(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "\npaperbench finished in %s\n", time.Since(start).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// writeCSV writes one CSV artifact when -csv is set.
func writeCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
}
