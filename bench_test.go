// Benchmarks regenerating the paper's tables and figures in reduced
// configurations (3 runs instead of 10, 20k reference samples instead of
// 50k). Each benchmark reports the headline quantities via b.ReportMetric so
// `go test -bench` output doubles as a miniature experiment log; run
// cmd/paperbench for paper-scale reproductions.
package moheco_test

import (
	"io"
	"testing"

	moheco "github.com/eda-go/moheco"
	"github.com/eda-go/moheco/internal/exp"
)

func benchConfig() exp.Config {
	cfg := exp.Quick()
	cfg.Progress = nil
	return cfg
}

// findMethod returns the aggregate for a table row label.
func findMethod(t *exp.TableResult, label string) *exp.MethodResult {
	for i := range t.Methods {
		if t.Methods[i].Label == label {
			return &t.Methods[i]
		}
	}
	return nil
}

// BenchmarkTable1 regenerates Table 1: deviation of the reported yield from
// the reference estimate on example 1 for all five methods.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1and2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		res.RenderDeviation(io.Discard)
		if m := findMethod(res, "MOHECO"); m != nil {
			b.ReportMetric(100*m.Deviation.Average, "MOHECO-dev-%")
		}
		if m := findMethod(res, "300 simulations (AS+LHS)"); m != nil {
			b.ReportMetric(100*m.Deviation.Average, "300sim-dev-%")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: total simulation counts on example 1.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1and2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		res.RenderSims(io.Discard)
		mo := findMethod(res, "MOHECO")
		fx := findMethod(res, "500 simulations (AS+LHS)")
		if mo != nil && fx != nil && fx.Sims.Average > 0 {
			b.ReportMetric(mo.Sims.Average, "MOHECO-sims")
			b.ReportMetric(fx.Sims.Average, "500sim-sims")
			b.ReportMetric(100*mo.Sims.Average/fx.Sims.Average, "cost-ratio-%")
		}
	}
}

// BenchmarkTable3 regenerates Table 3: yield deviations on example 2.
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 2 // example 2 runs are long (paper: "a few hours in real practice")
	for i := 0; i < b.N; i++ {
		res, err := exp.Table3and4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.RenderDeviation(io.Discard)
		if m := findMethod(res, "MOHECO"); m != nil {
			b.ReportMetric(100*m.Deviation.Average, "MOHECO-dev-%")
		}
	}
}

// BenchmarkTable4 regenerates Table 4: total simulation counts on example 2.
func BenchmarkTable4(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		res, err := exp.Table3and4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.RenderSims(io.Discard)
		mo := findMethod(res, "MOHECO")
		fx := findMethod(res, "500 simulations (AS+LHS)")
		if mo != nil && fx != nil && fx.Sims.Average > 0 {
			b.ReportMetric(100*mo.Sims.Average/fx.Sims.Average, "cost-ratio-%")
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3: the OCBA allocation inside one typical
// population of example 1.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
		b.ReportMetric(100*res.HighSimShare, "high-yield-sim-share-%")
		b.ReportMetric(100*res.Ratio, "vs-ASLHS-%")
	}
}

// BenchmarkFig6 regenerates Fig. 6: the per-method average deviation and
// simulation-count series of example 1.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1and2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		exp.RenderFig6(res, io.Discard)
	}
}

// BenchmarkRSBNN regenerates the §3.4 response-surface comparison: NN
// trained on MOHECO history predicting next-iteration yields.
func BenchmarkRSBNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunRSB(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FinalRMS, "final-RMS-%")
	}
}

// BenchmarkPSWCD regenerates the §3.4 worst-case-versus-statistical
// comparison: a corner-based sizing flow against MOHECO on true yield and
// power (the over-design axis).
func BenchmarkPSWCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunPSWCD(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.CornerYield, "corner-yield-%")
		b.ReportMetric(100*res.MohecoYield, "MOHECO-yield-%")
		b.ReportMetric(100*res.OverDesign, "overdesign-%")
	}
}

// benchEngineOptimize runs one fixed-seed optimization at the given worker
// count; the sequential/parallel benchmark pairs below measure the
// evaluation engine's speedup on the paper's two benchmark circuits (the
// results themselves are identical by the determinism contract).
func benchEngineOptimize(b *testing.B, p moheco.Problem, gens, workers int) {
	b.Helper()
	opts := moheco.DefaultOptions(moheco.MethodFixedBudget, 300)
	opts.PopSize = 24
	opts.MaxGenerations = gens
	opts.Seed = 11
	opts.Workers = workers
	for i := 0; i < b.N; i++ {
		res, err := moheco.Optimize(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalSims), "sims")
	}
}

// BenchmarkEngineFoldedCascodeSequential is the Workers=1 baseline on the
// paper's example 1; compare against BenchmarkEngineFoldedCascodeParallel
// for the engine speedup (requires GOMAXPROCS > 1).
func BenchmarkEngineFoldedCascodeSequential(b *testing.B) {
	benchEngineOptimize(b, moheco.NewFoldedCascodeProblem(), 30, 1)
}

// BenchmarkEngineFoldedCascodeParallel runs the identical workload on the
// full worker pool.
func BenchmarkEngineFoldedCascodeParallel(b *testing.B) {
	benchEngineOptimize(b, moheco.NewFoldedCascodeProblem(), 30, 0)
}

// BenchmarkEngineTelescopicSequential is the Workers=1 baseline on the
// paper's example 2 (123 variation variables; the heavier evaluation).
// The higher generation cap carries the run well past the point the
// population turns feasible, so yield estimation dominates.
func BenchmarkEngineTelescopicSequential(b *testing.B) {
	benchEngineOptimize(b, moheco.NewTelescopicProblem(), 60, 1)
}

// BenchmarkEngineTelescopicParallel runs the identical workload on the full
// worker pool.
func BenchmarkEngineTelescopicParallel(b *testing.B) {
	benchEngineOptimize(b, moheco.NewTelescopicProblem(), 60, 0)
}

// benchEngineReference measures the deterministically-chunked reference
// estimator at the given worker count.
func benchEngineReference(b *testing.B, workers int) {
	b.Helper()
	p := moheco.NewFoldedCascodeProblem()
	x := p.ReferenceDesign()
	for i := 0; i < b.N; i++ {
		y, err := moheco.EstimateYieldWorkers(p, x, 20000, 7, workers)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*y, "yield-%")
	}
}

// BenchmarkEngineReferenceSequential is the Workers=1 baseline for the
// 20k-sample reference estimate.
func BenchmarkEngineReferenceSequential(b *testing.B) { benchEngineReference(b, 1) }

// BenchmarkEngineReferenceParallel runs the identical estimate on the full
// worker pool; the returned yield is bit-identical to the sequential run.
func BenchmarkEngineReferenceParallel(b *testing.B) { benchEngineReference(b, 0) }

// BenchmarkAblation runs the design-choice ablation study: MOHECO with the
// sampler, acceptance sampling, memetic operator and promotion threshold
// individually altered.
func BenchmarkAblation(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
		for _, row := range res.Rows {
			if row.Label == "MOHECO (baseline)" {
				b.ReportMetric(row.Sims.Average, "baseline-sims")
			}
		}
	}
}
